package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// ---------------------------------------------------------------------------
// Page

func TestPageInsertGet(t *testing.T) {
	var p Page
	p.Reset()
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("")}
	var slots []int
	for _, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		got, err := p.Get(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Errorf("slot %d: got %q, want %q", s, got, recs[i])
		}
	}
	if p.NumSlots() != 3 {
		t.Errorf("NumSlots = %d", p.NumSlots())
	}
}

func TestPageDeleteAndSlotReuse(t *testing.T) {
	var p Page
	p.Reset()
	s0, _ := p.Insert([]byte("one"))
	s1, _ := p.Insert([]byte("two"))
	if err := p.Delete(s0); err != nil {
		t.Fatal(err)
	}
	if p.Live(s0) {
		t.Error("deleted slot should not be live")
	}
	if !p.Live(s1) {
		t.Error("other slot should stay live")
	}
	if _, err := p.Get(s0); err == nil {
		t.Error("Get of deleted slot should error")
	}
	if err := p.Delete(s0); err == nil {
		t.Error("double delete should error")
	}
	// Reinsert reuses the tombstoned slot number.
	s2, _ := p.Insert([]byte("three"))
	if s2 != s0 {
		t.Errorf("slot not reused: got %d, want %d", s2, s0)
	}
}

func TestPageFull(t *testing.T) {
	var p Page
	p.Reset()
	rec := make([]byte, 512)
	n := 0
	for p.CanFit(len(rec)) {
		if _, err := p.Insert(rec); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no records fit")
	}
	if _, err := p.Insert(rec); err == nil {
		t.Error("insert into full page should error")
	}
	// Oversized record.
	if _, err := p.Insert(make([]byte, MaxRecordSize+1)); err == nil {
		t.Error("oversized record should error")
	}
}

func TestPageBoundsChecks(t *testing.T) {
	var p Page
	p.Reset()
	if _, err := p.Get(0); err == nil {
		t.Error("Get on empty page")
	}
	if err := p.Delete(5); err == nil {
		t.Error("Delete out of range")
	}
	if p.Live(-1) || p.Live(99) {
		t.Error("Live out of range")
	}
}

// ---------------------------------------------------------------------------
// HeapFile

func openTemp(t *testing.T, frames int) *HeapFile {
	t.Helper()
	h, err := OpenHeapFile(filepath.Join(t.TempDir(), "t.tbl"), frames)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

func TestHeapInsertScan(t *testing.T) {
	h := openTemp(t, 8)
	const n = 500
	want := make(map[string]bool)
	for i := 0; i < n; i++ {
		rec := []byte(fmt.Sprintf("record-%04d-%s", i, bytes.Repeat([]byte("x"), i%97)))
		if _, err := h.Insert(rec); err != nil {
			t.Fatal(err)
		}
		want[string(rec)] = true
	}
	sc := h.NewScanner()
	defer sc.Close()
	got := 0
	for {
		_, rec, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if !want[string(rec)] {
			t.Fatalf("unexpected record %q", rec)
		}
		got++
	}
	if got != n {
		t.Fatalf("scanned %d records, want %d", got, n)
	}
	if h.NumPages() < 2 {
		t.Error("expected multiple pages")
	}
}

func TestHeapGetDelete(t *testing.T) {
	h := openTemp(t, 8)
	rid1, _ := h.Insert([]byte("keep"))
	rid2, _ := h.Insert([]byte("drop"))
	if got, _ := h.Get(rid1); string(got) != "keep" {
		t.Errorf("Get: %q", got)
	}
	if err := h.Delete(rid2); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rid2); err == nil {
		t.Error("Get of deleted rid should error")
	}
	// Scan sees only the live record.
	sc := h.NewScanner()
	defer sc.Close()
	count := 0
	for {
		_, _, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != 1 {
		t.Errorf("scan after delete: %d records", count)
	}
}

func TestHeapPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.tbl")
	h, err := OpenHeapFile(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 100; i++ {
		rid, err := h.Insert([]byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and verify.
	h2, err := OpenHeapFile(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	for i, rid := range rids {
		got, err := h2.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != fmt.Sprintf("v%d", i) {
			t.Errorf("rid %v: got %q", rid, got)
		}
	}
}

func TestBufferPoolEviction(t *testing.T) {
	h := openTemp(t, 2) // tiny pool forces eviction
	for i := 0; i < 2000; i++ {
		if _, err := h.Insert(bytes.Repeat([]byte("z"), 100)); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumPages() < 10 {
		t.Fatalf("want many pages, got %d", h.NumPages())
	}
	// Full scan with a 2-frame pool must evict and re-read correctly.
	sc := h.NewScanner()
	defer sc.Close()
	n := 0
	for {
		_, rec, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if len(rec) != 100 {
			t.Fatalf("bad record length %d", len(rec))
		}
		n++
	}
	if n != 2000 {
		t.Fatalf("scan count %d", n)
	}
	if h.Pool().Evictions == 0 {
		t.Error("expected evictions with a 2-frame pool")
	}
}

func TestBufferPoolPinAccounting(t *testing.T) {
	h := openTemp(t, 4)
	if _, err := h.Insert([]byte("x")); err != nil {
		t.Fatal(err)
	}
	bp := h.Pool()
	p, err := bp.Pin(0)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Fatal("nil page")
	}
	if err := bp.Unpin(0, false); err != nil {
		t.Fatal(err)
	}
	if err := bp.Unpin(0, false); err == nil {
		t.Error("unpin below zero should error")
	}
	if _, err := bp.Pin(9999); err == nil {
		t.Error("pin out of range should error")
	}
	if err := bp.Unpin(4242, false); err == nil {
		t.Error("unpin of non-resident page should error")
	}
}

func TestBufferPoolAllPinned(t *testing.T) {
	dir := t.TempDir()
	f, err := os.OpenFile(filepath.Join(dir, "x.tbl"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bp, err := NewBufferPool(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := bp.AppendPage(); err != nil {
			t.Fatal(err)
		}
	}
	// Both frames pinned: appending a third page must fail cleanly.
	if _, _, err := bp.AppendPage(); err == nil {
		t.Error("append with all frames pinned should error")
	}
	bp.Unpin(0, false)
	if _, _, err := bp.AppendPage(); err != nil {
		t.Errorf("append after unpin: %v", err)
	}
}

func TestScannerCloseMidway(t *testing.T) {
	h := openTemp(t, 4)
	for i := 0; i < 50; i++ {
		h.Insert([]byte("row"))
	}
	sc := h.NewScanner()
	if _, _, ok, err := sc.Next(); err != nil || !ok {
		t.Fatal("first next")
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sc.Close(); err != nil {
		t.Fatal("double close must be safe")
	}
	// After close, Next reports exhaustion.
	if _, _, ok, _ := sc.Next(); ok {
		t.Error("next after close")
	}
}

// Property: insert/delete sequences preserve exactly the live set.
func TestHeapPropertyLiveSet(t *testing.T) {
	f := func(seed int64) bool {
		dir, err := os.MkdirTemp("", "heapprop-*")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		h, err := OpenHeapFile(filepath.Join(dir, "p.tbl"), 4)
		if err != nil {
			return false
		}
		defer h.Close()
		rng := rand.New(rand.NewSource(seed))
		live := make(map[RID]string)
		var rids []RID
		for i := 0; i < 300; i++ {
			if rng.Intn(3) > 0 || len(rids) == 0 {
				val := fmt.Sprintf("v%d-%d", seed, i)
				rid, err := h.Insert([]byte(val))
				if err != nil {
					return false
				}
				live[rid] = val
				rids = append(rids, rid)
			} else {
				k := rng.Intn(len(rids))
				rid := rids[k]
				rids = append(rids[:k], rids[k+1:]...)
				if _, ok := live[rid]; !ok {
					continue
				}
				if err := h.Delete(rid); err != nil {
					return false
				}
				delete(live, rid)
			}
		}
		// Scan must produce exactly the live set.
		sc := h.NewScanner()
		defer sc.Close()
		got := make(map[RID]string)
		for {
			rid, rec, ok, err := sc.Next()
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			got[rid] = string(rec)
		}
		if len(got) != len(live) {
			return false
		}
		for rid, val := range live {
			if got[rid] != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
