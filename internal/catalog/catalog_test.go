package catalog

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/types"
)

func openTemp(t *testing.T) *Catalog {
	t.Helper()
	c, err := Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

var statesCols = []ColumnDef{
	{Name: "Name", Type: schema.TString},
	{Name: "Population", Type: schema.TInt},
	{Name: "Capital", Type: schema.TString},
}

func TestCreateGetDrop(t *testing.T) {
	c := openTemp(t)
	if _, err := c.Create("States", statesCols); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("states"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if _, err := c.Create("STATES", statesCols); err == nil {
		t.Error("duplicate create should error (case-insensitive)")
	}
	if got := c.TableNames(); len(got) != 1 || got[0] != "States" {
		t.Errorf("TableNames = %v", got)
	}
	if err := c.Drop("States"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("States"); ok {
		t.Error("dropped table still visible")
	}
	if err := c.Drop("States"); err == nil {
		t.Error("double drop should error")
	}
}

func TestCreateValidation(t *testing.T) {
	c := openTemp(t)
	if _, err := c.Create("Empty", nil); err == nil {
		t.Error("zero columns should error")
	}
	if _, err := c.Create("Dup", []ColumnDef{{Name: "A", Type: schema.TInt}, {Name: "a", Type: schema.TInt}}); err == nil {
		t.Error("duplicate column names should error")
	}
}

func TestInsertCoercionAndScan(t *testing.T) {
	c := openTemp(t)
	tab, err := c.Create("States", statesCols)
	if err != nil {
		t.Fatal(err)
	}
	// Float coerces to declared INT; ints stringify into VARCHAR.
	if _, err := tab.Insert(types.Tuple{types.Str("Utah"), types.Float(2100000.9), types.Int(42)}); err != nil {
		t.Fatal(err)
	}
	rows, err := tab.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][1].Kind != types.KindInt || rows[0][1].I != 2100000 {
		t.Errorf("population coerced wrong: %v", rows[0][1])
	}
	if rows[0][2].Kind != types.KindString || rows[0][2].S != "42" {
		t.Errorf("capital coerced wrong: %v", rows[0][2])
	}
	// Arity mismatch.
	if _, err := tab.Insert(types.Tuple{types.Str("x")}); err == nil {
		t.Error("arity mismatch should error")
	}
	// Bad coercion.
	if _, err := tab.Insert(types.Tuple{types.Str("x"), types.Str("notanumber"), types.Str("y")}); err == nil {
		t.Error("uncoercible value should error")
	}
	// NULLs pass through.
	if _, err := tab.Insert(types.Tuple{types.Null(), types.Null(), types.Null()}); err != nil {
		t.Errorf("NULL insert: %v", err)
	}
}

func TestCatalogPersistence(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := c.Create("Sigs", []ColumnDef{{Name: "Name", Type: schema.TString}})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"SIGMOD", "SIGOPS"} {
		if _, err := tab.Insert(types.Tuple{types.Str(s)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	tab2, ok := c2.Get("Sigs")
	if !ok {
		t.Fatal("table lost after reopen")
	}
	if len(tab2.Def.Columns) != 1 || tab2.Def.Columns[0].Name != "Name" {
		t.Errorf("column defs lost: %+v", tab2.Def)
	}
	rows, err := tab2.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows after reopen = %d", len(rows))
	}
}

func TestInstantiateSchema(t *testing.T) {
	c := openTemp(t)
	tab, _ := c.Create("States", statesCols)
	s1 := tab.InstantiateSchema("")
	s2 := tab.InstantiateSchema("S")
	if s1.Cols[0].Table != "States" || s2.Cols[0].Table != "S" {
		t.Error("alias labeling")
	}
	// Fresh AttrIDs per instantiation (Query 4 references WebCount twice).
	for i := range s1.Cols {
		if s1.Cols[i].ID == s2.Cols[i].ID {
			t.Error("instantiations must not share AttrIDs")
		}
	}
	if s1.Cols[1].Type != schema.TInt {
		t.Error("column type propagated")
	}
}

func TestFlush(t *testing.T) {
	c := openTemp(t)
	tab, _ := c.Create("T", []ColumnDef{{Name: "A", Type: schema.TInt}})
	tab.Insert(types.Tuple{types.Int(1)})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
}
