package dsq

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/harness"
	"repro/internal/search"
)

func newDB(t *testing.T) *core.DB {
	t.Helper()
	env, err := harness.NewEnv(harness.Options{Dir: t.TempDir(), Latency: search.ZeroLatency()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	return env.DB
}

func TestDSQScubaCorrelation(t *testing.T) {
	db := newDB(t)
	ex := New(db)
	rep, err := ex.Explain(context.Background(), "scuba diving",
		TermSource{Table: "States", Column: "Name"},
		TermSource{Table: "Movies", Column: "Title"})
	if err != nil {
		t.Fatal(err)
	}
	states := rep.Singles["States.Name"]
	if len(states) < 3 {
		t.Fatalf("state correlations: %v", states)
	}
	// The seeded corpus correlates Florida > Hawaii > California.
	for i, want := range datasets.ScubaStates {
		if states[i].Terms[0] != want {
			t.Errorf("state rank %d: %s, want %s", i+1, states[i].Terms[0], want)
		}
	}
	// Ranked descending.
	for i := 1; i < len(states); i++ {
		if states[i-1].Count < states[i].Count {
			t.Error("state correlations not sorted")
		}
	}
	movies := rep.Singles["Movies.Title"]
	if len(movies) == 0 {
		t.Fatal("no movie correlations")
	}
	topMovies := make(map[string]bool)
	for i := 0; i < 4 && i < len(movies); i++ {
		topMovies[movies[i].Terms[0]] = true
	}
	found := 0
	for _, m := range datasets.ScubaMovies {
		if topMovies[m] {
			found++
		}
	}
	if found < 3 {
		t.Errorf("scuba movies not in top-4: %v", movies[:4])
	}
	// Pairs: state/movie/scuba-diving triples exist ("an underwater
	// thriller filmed in Florida").
	if len(rep.Pairs) == 0 {
		t.Fatal("no pair correlations")
	}
	for _, p := range rep.Pairs {
		if len(p.Terms) != 2 || p.Count <= 0 {
			t.Errorf("bad pair: %+v", p)
		}
	}
}

func TestDSQSingleSource(t *testing.T) {
	db := newDB(t)
	ex := New(db)
	rep, err := ex.Explain(context.Background(), "four corners", TermSource{Table: "States", Column: "Name"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pairs) != 0 {
		t.Error("single source should produce no pairs")
	}
	states := rep.Singles["States.Name"]
	if len(states) == 0 || states[0].Terms[0] != "Colorado" {
		t.Errorf("four corners top: %v", states)
	}
}

func TestDSQSeedTablesCleanedUp(t *testing.T) {
	db := newDB(t)
	ex := New(db)
	if _, err := ex.Explain(context.Background(), "scuba diving",
		TermSource{Table: "States", Column: "Name"},
		TermSource{Table: "Movies", Column: "Title"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range db.Catalog().TableNames() {
		if strings.HasPrefix(name, "dsq_seed") {
			t.Errorf("scratch table %s left behind", name)
		}
	}
}

func TestDSQValidation(t *testing.T) {
	db := newDB(t)
	ex := New(db)
	if _, err := ex.Explain(context.Background(), "bad'phrase", TermSource{Table: "States", Column: "Name"}); err == nil {
		t.Error("quoted phrase should be rejected")
	}
	if _, err := ex.Explain(context.Background(), "x", TermSource{Table: "Missing", Column: "Name"}); err == nil {
		t.Error("unknown table should error")
	}
}

func TestReportFormat(t *testing.T) {
	rep := &Report{
		Phrase: "scuba diving",
		Singles: map[string][]Correlation{
			"States.Name": {{Terms: []string{"Florida"}, Count: 39}},
		},
		Pairs: []Correlation{{Terms: []string{"Florida", "The Deep"}, Count: 4}},
	}
	out := rep.Format()
	for _, want := range []string{"scuba diving", "Florida", "39", "Florida / The Deep"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

// A canceled context must abort the report before (or during) its WSQ
// queries — regression for the ctx-less Explain that ran every WebCount
// call to completion regardless of the caller's deadline.
func TestDSQExplainHonorsCancellation(t *testing.T) {
	db := newDB(t)
	ex := New(db)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ex.Explain(ctx, "scuba diving",
		TermSource{Table: "States", Column: "Name"}); err == nil {
		t.Fatal("canceled Explain should error")
	}
}
