// Package dsq implements Database-Supported Web Queries, the converse
// direction sketched in Section 1 of the paper: given a Web keyword
// phrase, DSQ "uses the Web to correlate that phrase with terms in the
// known database" — ranking the values of designated database columns by
// how often they co-occur with the phrase on the Web, and finding
// cross-table pairs (e.g. state/movie pairs near "scuba diving").
//
// DSQ is built entirely on the WSQ machinery: it generates SQL over the
// WebCount virtual table and executes it through the same engine, so the
// many WebCount calls it needs are overlapped by asynchronous iteration.
package dsq

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/types"
)

// TermSource designates one database column whose values are candidate
// correlation terms, e.g. {Table: "States", Column: "Name"}.
type TermSource struct {
	Table  string
	Column string
}

// Label returns a display label for the source.
func (s TermSource) Label() string { return s.Table + "." + s.Column }

// Correlation is one term (or term pair) with its Web co-occurrence count.
type Correlation struct {
	Terms []string
	Count int64
}

// Report is the result of explaining one phrase against the database.
type Report struct {
	Phrase string
	// Singles maps each term source label to its ranked correlations.
	Singles map[string][]Correlation
	// Pairs holds ranked cross-source term pairs.
	Pairs []Correlation
}

// Explainer runs DSQ over an open WSQ database.
type Explainer struct {
	DB *core.DB
	// TopK bounds how many top terms per source seed the pair search
	// (pairwise counts are quadratic; the paper's DSQ sketch correlates
	// top terms only). Default 4.
	TopK int
	// MinCount filters noise correlations. Default 1.
	MinCount int64
}

// New builds an Explainer over db.
func New(db *core.DB) *Explainer {
	return &Explainer{DB: db, TopK: 4, MinCount: 1}
}

// Explain correlates the phrase with every term source, then with pairs of
// top terms across the first two sources. Every generated WSQ query runs
// under ctx, so a deadline or cancellation aborts the whole report,
// including the many WebCount calls in flight.
func (e *Explainer) Explain(ctx context.Context, phrase string, sources ...TermSource) (*Report, error) {
	if strings.ContainsAny(phrase, "'") {
		return nil, fmt.Errorf("phrase must not contain quotes")
	}
	rep := &Report{Phrase: phrase, Singles: make(map[string][]Correlation)}
	for _, src := range sources {
		ranked, err := e.correlateSingle(ctx, phrase, src)
		if err != nil {
			return nil, fmt.Errorf("correlate %s: %w", src.Label(), err)
		}
		rep.Singles[src.Label()] = ranked
	}
	if len(sources) >= 2 {
		pairs, err := e.correlatePairs(ctx, phrase, sources[0], sources[1], rep)
		if err != nil {
			return nil, err
		}
		rep.Pairs = pairs
	}
	return rep, nil
}

// correlateSingle ranks one source's terms by co-occurrence with the
// phrase, via a single WSQ query:
//
//	SELECT <col>, Count FROM <table>, WebCount
//	WHERE <col> = T1 AND T2 = '<phrase>' ORDER BY Count DESC
func (e *Explainer) correlateSingle(ctx context.Context, phrase string, src TermSource) ([]Correlation, error) {
	q := fmt.Sprintf(
		`SELECT %s, Count FROM %s, WebCount WHERE %s = T1 AND T2 = '%s' ORDER BY Count DESC`,
		src.Column, src.Table, src.Column, phrase)
	res, err := e.DB.QueryContext(ctx, q)
	if err != nil {
		return nil, err
	}
	var out []Correlation
	for _, row := range res.Rows {
		n, err := row[1].AsInt()
		if err != nil {
			return nil, err
		}
		if n < e.MinCount {
			continue
		}
		out = append(out, Correlation{Terms: []string{row[0].AsString()}, Count: n})
	}
	return out, nil
}

// correlatePairs counts phrase co-occurrence for the cross product of the
// two sources' top terms, again through WebCount (T1 near T2 near T3):
//
//	SELECT A.<c>, B.<c>, Count FROM <A>, <B>, WebCount
//	WHERE A.<c> = T1 AND B.<c> = T2 AND T3 = '<phrase>'
//
// Seeding with each source's top-K single terms keeps the number of Web
// calls linear in K².
func (e *Explainer) correlatePairs(ctx context.Context, phrase string, a, b TermSource, rep *Report) ([]Correlation, error) {
	topA := topTerms(rep.Singles[a.Label()], e.TopK)
	topB := topTerms(rep.Singles[b.Label()], e.TopK)
	if len(topA) == 0 || len(topB) == 0 {
		return nil, nil
	}
	// Stage the seed terms in a scratch pair of tables so the pair search
	// remains a single WSQ query (and thus one concurrent async batch).
	if err := e.stageSeeds(ctx, "dsq_seed_a", topA); err != nil {
		return nil, err
	}
	defer e.dropSeeds(ctx, "dsq_seed_a")
	if err := e.stageSeeds(ctx, "dsq_seed_b", topB); err != nil {
		return nil, err
	}
	defer e.dropSeeds(ctx, "dsq_seed_b")

	q := fmt.Sprintf(
		`SELECT A.Term, B.Term, Count FROM dsq_seed_a A, dsq_seed_b B, WebCount
		 WHERE A.Term = T1 AND B.Term = T2 AND T3 = '%s' ORDER BY Count DESC`, phrase)
	res, err := e.DB.QueryContext(ctx, q)
	if err != nil {
		return nil, err
	}
	var out []Correlation
	for _, row := range res.Rows {
		n, err := row[2].AsInt()
		if err != nil {
			return nil, err
		}
		if n < e.MinCount {
			continue
		}
		out = append(out, Correlation{Terms: []string{row[0].AsString(), row[1].AsString()}, Count: n})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out, nil
}

func (e *Explainer) stageSeeds(ctx context.Context, table string, terms []string) error {
	e.dropSeeds(ctx, table) // ignore "does not exist"
	if _, err := e.DB.ExecContext(ctx, `CREATE TABLE `+table+` (Term VARCHAR)`); err != nil {
		return err
	}
	t, _ := e.DB.Catalog().Get(table)
	for _, term := range terms {
		if _, err := t.Insert(types.Tuple{types.Str(term)}); err != nil {
			return err
		}
	}
	return nil
}

// dropSeeds removes a scratch seed table, ignoring errors (the table may
// never have been created when staging failed midway).
func (e *Explainer) dropSeeds(ctx context.Context, table string) {
	_, _ = e.DB.ExecContext(ctx, `DROP TABLE `+table)
}

func topTerms(ranked []Correlation, k int) []string {
	var out []string
	for i, c := range ranked {
		if i >= k {
			break
		}
		out = append(out, c.Terms[0])
	}
	return out
}

// Format renders the report as text.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DSQ: explaining %q\n", r.Phrase)
	labels := make([]string, 0, len(r.Singles))
	for l := range r.Singles {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Fprintf(&b, "\n%s near %q:\n", l, r.Phrase)
		for i, c := range r.Singles[l] {
			if i >= 10 {
				break
			}
			fmt.Fprintf(&b, "  %-30s %d\n", c.Terms[0], c.Count)
		}
	}
	if len(r.Pairs) > 0 {
		fmt.Fprintf(&b, "\npairs near %q:\n", r.Phrase)
		for i, c := range r.Pairs {
			if i >= 10 {
				break
			}
			fmt.Fprintf(&b, "  %-45s %d\n", strings.Join(c.Terms, " / "), c.Count)
		}
	}
	return b.String()
}
