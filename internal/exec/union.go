package exec

import (
	"errors"
	"fmt"

	"repro/internal/schema"
	"repro/internal/types"
)

// UnionAll is the bag union: it streams its left input, then its right.
// Inputs must be positionally compatible; the output carries the left
// input's attribute identities.
//
// UnionAll never clashes with a ReqSync — it neither interprets attribute
// values nor needs an accurate tuple tally — which is exactly why the
// paper's percolation step rewrites a clashing set union as "a 'Select
// Distinct' over a non-clashing bag union operator" (Section 4.5.2). The
// planner lowers SQL UNION to Distinct(UnionAll(...)) so that rewrite is
// the plan's natural form.
type UnionAll struct {
	Left, Right Operator
	onRight     bool
	opened      bool
}

// NewUnionAll builds a bag union. It validates positional compatibility.
func NewUnionAll(left, right Operator) (*UnionAll, error) {
	l, r := left.Schema(), right.Schema()
	if l.Len() != r.Len() {
		return nil, fmt.Errorf("UNION inputs have %d and %d columns", l.Len(), r.Len())
	}
	for i := range l.Cols {
		if l.Cols[i].Type != r.Cols[i].Type {
			return nil, fmt.Errorf("UNION column %d: %s vs %s",
				i+1, l.Cols[i].Type, r.Cols[i].Type)
		}
	}
	return &UnionAll{Left: left, Right: right}, nil
}

// Schema implements Operator: the left input names the output.
func (u *UnionAll) Schema() *schema.Schema { return u.Left.Schema() }

// Open implements Operator.
func (u *UnionAll) Open(ctx *Context) error {
	if err := u.Left.Open(ctx); err != nil {
		return err
	}
	if err := u.Right.Open(ctx); err != nil {
		// Close is gated on opened, so the half-open left subtree must be
		// released here or it leaks.
		return errors.Join(err, u.Left.Close())
	}
	u.onRight = false
	u.opened = true
	return nil
}

// Next implements Operator.
func (u *UnionAll) Next(ctx *Context) (types.Tuple, bool, error) {
	if !u.opened {
		return nil, false, fmt.Errorf("UnionAll: Next before Open")
	}
	if !u.onRight {
		t, ok, err := u.Left.Next(ctx)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return t, true, nil
		}
		u.onRight = true
	}
	return u.Right.Next(ctx)
}

// NextBatch implements BatchOperator: left batches until exhausted, then
// right batches. Batches never mix inputs (attribute identities are the
// left's either way; keeping the boundary just simplifies reasoning).
func (u *UnionAll) NextBatch(ctx *Context, max int) (Batch, bool, error) {
	if !u.opened {
		return nil, false, fmt.Errorf("UnionAll: NextBatch before Open")
	}
	if !u.onRight {
		b, ok, err := NextBatchFrom(ctx, u.Left, max)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return b, true, nil
		}
		u.onRight = true
	}
	return NextBatchFrom(ctx, u.Right, max)
}

// Close implements Operator.
func (u *UnionAll) Close() error {
	if !u.opened {
		return nil
	}
	u.opened = false
	return errors.Join(u.Left.Close(), u.Right.Close())
}

// Children implements Operator.
func (u *UnionAll) Children() []Operator { return []Operator{u.Left, u.Right} }

// SetChild implements Operator.
func (u *UnionAll) SetChild(i int, op Operator) {
	switch i {
	case 0:
		u.Left = op
	case 1:
		u.Right = op
	default:
		panic("UnionAll has two children")
	}
}

// Name implements Operator.
func (u *UnionAll) Name() string { return "Union All" }

// Describe implements Operator.
func (u *UnionAll) Describe() string { return "" }
