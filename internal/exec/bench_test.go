package exec

import (
	"fmt"
	"testing"

	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/types"
)

func benchRows(n int) []types.Tuple {
	out := make([]types.Tuple, n)
	for i := range out {
		out[i] = types.Tuple{types.Int(int64(i % 97)), types.Str(fmt.Sprintf("row-%d", i))}
	}
	return out
}

func BenchmarkFilterThroughput(b *testing.B) {
	a := intCol("T", "A")
	s := schema.New(a, strCol("T", "B"))
	scan := NewValuesScan(s, benchRows(10_000))
	f := NewFilter(scan, expr.NewCmp(expr.LT, expr.NewColRef(a), expr.NewLiteral(types.Int(50))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(NewContext(), f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNestedLoopJoin100x100(b *testing.B) {
	la := intCol("L", "A")
	ra := intCol("R", "A")
	left := NewValuesScan(schema.New(la), benchRows(100)[:100])
	right := NewValuesScan(schema.New(ra), benchRows(100)[:100])
	// Trim to single column.
	lrows := make([]types.Tuple, 100)
	rrows := make([]types.Tuple, 100)
	for i := range lrows {
		lrows[i] = types.Tuple{types.Int(int64(i))}
		rrows[i] = types.Tuple{types.Int(int64(i))}
	}
	left.Rows, right.Rows = lrows, rrows
	j := NewNestedLoopJoin(left, right, expr.NewCmp(expr.EQ, expr.NewColRef(la), expr.NewColRef(ra)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := Run(NewContext(), j)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 100 {
			b.Fatalf("rows: %d", len(rows))
		}
	}
}

func BenchmarkSort10k(b *testing.B) {
	a := intCol("T", "A")
	s := schema.New(a, strCol("T", "B"))
	scan := NewValuesScan(s, benchRows(10_000))
	srt := NewSort(scan, []SortKey{{Expr: expr.NewColRef(a), Desc: true}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(NewContext(), srt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregate10k(b *testing.B) {
	a := intCol("T", "A")
	s := schema.New(a, strCol("T", "B"))
	scan := NewValuesScan(s, benchRows(10_000))
	agg := NewAggregate(scan,
		[]expr.Expr{expr.NewColRef(a)}, []schema.Column{a},
		[]AggSpec{{Func: AggCountStar, OutCol: intCol("", "n")}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := Run(NewContext(), agg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 97 {
			b.Fatalf("groups: %d", len(rows))
		}
	}
}

func BenchmarkDependentJoinRebind(b *testing.B) {
	// Measures the per-binding overhead of the dependent-join protocol
	// (frame push/pop + right-subtree re-open) at zero call latency.
	term := strCol("L", "Term")
	var lrows []types.Tuple
	for i := 0; i < 500; i++ {
		lrows = append(lrows, types.Tuple{types.Str(fmt.Sprintf("t%d", i))})
	}
	left := NewValuesScan(schema.New(term), lrows)
	src := &fakeSource{name: "F", rowsFor: func(arg string) []types.Tuple {
		return []types.Tuple{{types.Int(int64(len(arg)))}}
	}}
	ev := NewEVScan(src, []expr.Expr{expr.NewColRef(term)}, fakeSchema("F"))
	dj := NewDependentJoin(left, ev, "")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := Run(NewContext(), dj)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 500 {
			b.Fatalf("rows: %d", len(rows))
		}
	}
}
