package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/types"
)

// ---------------------------------------------------------------------------
// HashJoin / HashSemiJoin correctness against the nested-loop reference.

// randTable builds n rows of (key, payload) with keys drawn from a small
// domain (forcing duplicates) and a configurable fraction of NULL keys.
func randTable(rng *rand.Rand, n, keyDomain int, nullFrac float64) []types.Tuple {
	rows := make([]types.Tuple, n)
	for i := range rows {
		var k types.Value
		if rng.Float64() < nullFrac {
			k = types.Null()
		} else {
			k = types.Int(int64(rng.Intn(keyDomain)))
		}
		rows[i] = types.Tuple{k, types.Int(int64(i))}
	}
	return rows
}

// TestHashJoinMatchesNestedLoopRandomized: for seeded random inputs with
// duplicate and NULL keys, HashJoin must produce exactly the rows of the
// equivalent nested-loop join — same multiplicity AND same order (probe in
// left stream order, matches in right scan order), so plans stay
// byte-identical when the planner swaps join algorithms.
func TestHashJoinMatchesNestedLoopRandomized(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			lk, lp := intCol("L", "K"), intCol("L", "P")
			rk, rp := intCol("R", "K"), intCol("R", "P")
			lsc, rsc := schema.New(lk, lp), schema.New(rk, rp)
			lrows := randTable(rng, 40+rng.Intn(40), 12, 0.1)
			rrows := randTable(rng, 40+rng.Intn(40), 12, 0.1)

			mk := func() (Operator, Operator) {
				hash := NewHashJoin(
					NewValuesScan(lsc, lrows), NewValuesScan(rsc, rrows),
					[]expr.Expr{expr.NewColRef(lk)}, []expr.Expr{expr.NewColRef(rk)}, nil)
				nlj := NewNestedLoopJoin(
					NewValuesScan(lsc, lrows), NewValuesScan(rsc, rrows),
					expr.NewCmp(expr.EQ, expr.NewColRef(lk), expr.NewColRef(rk)))
				return hash, nlj
			}
			hash, nlj := mk()
			got := rowStrings(runAll(t, hash))
			want := rowStrings(runAll(t, nlj))
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("hash join diverges from nested loop:\nhash: %v\nnlj:  %v", got, want)
			}

			// With a residual: equi-key plus a non-equi conjunct.
			hashR := NewHashJoin(
				NewValuesScan(lsc, lrows), NewValuesScan(rsc, rrows),
				[]expr.Expr{expr.NewColRef(lk)}, []expr.Expr{expr.NewColRef(rk)},
				expr.NewCmp(expr.LT, expr.NewColRef(lp), expr.NewColRef(rp)))
			nljR := NewNestedLoopJoin(
				NewValuesScan(lsc, lrows), NewValuesScan(rsc, rrows),
				expr.NewAnd(
					expr.NewCmp(expr.EQ, expr.NewColRef(lk), expr.NewColRef(rk)),
					expr.NewCmp(expr.LT, expr.NewColRef(lp), expr.NewColRef(rp))))
			gotR := rowStrings(runAll(t, hashR))
			wantR := rowStrings(runAll(t, nljR))
			if fmt.Sprint(gotR) != fmt.Sprint(wantR) {
				t.Fatalf("residual hash join diverges:\nhash: %v\nnlj:  %v", gotR, wantR)
			}
		})
	}
}

// TestHashJoinNullKeysNeverMatch: SQL equality over NULL is NULL, so NULL
// keys join with nothing — not even other NULLs — on either side.
func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	lk, rk := intCol("L", "K"), intCol("R", "K")
	lrows := []types.Tuple{{types.Null()}, {types.Int(1)}, {types.Null()}}
	rrows := []types.Tuple{{types.Null()}, {types.Int(1)}, {types.Int(2)}}
	j := NewHashJoin(
		NewValuesScan(schema.New(lk), lrows), NewValuesScan(schema.New(rk), rrows),
		[]expr.Expr{expr.NewColRef(lk)}, []expr.Expr{expr.NewColRef(rk)}, nil)
	rows := runAll(t, j)
	if len(rows) != 1 {
		t.Fatalf("rows: %v, want exactly the 1=1 match", rows)
	}
	if v, _ := rows[0][0].AsInt(); v != 1 {
		t.Errorf("row: %v", rows[0])
	}
}

// TestHashJoinDuplicateKeysCrossProduct: m duplicates on the left times n
// on the right must yield m*n joined rows, like the nested loop.
func TestHashJoinDuplicateKeysCrossProduct(t *testing.T) {
	lk, rk := intCol("L", "K"), intCol("R", "K")
	lrows := []types.Tuple{{types.Int(7)}, {types.Int(7)}, {types.Int(7)}}
	rrows := []types.Tuple{{types.Int(7)}, {types.Int(7)}}
	j := NewHashJoin(
		NewValuesScan(schema.New(lk), lrows), NewValuesScan(schema.New(rk), rrows),
		[]expr.Expr{expr.NewColRef(lk)}, []expr.Expr{expr.NewColRef(rk)}, nil)
	if rows := runAll(t, j); len(rows) != 6 {
		t.Fatalf("duplicate-key cross product: %d rows, want 6", len(rows))
	}
}

// TestHashJoinMultiColumnKeys: composite keys match only when every
// component matches; numeric kinds compare as numbers (1 == 1.0).
func TestHashJoinMultiColumnKeys(t *testing.T) {
	la, lb := intCol("L", "A"), strCol("L", "B")
	ra, rb := intCol("R", "A"), strCol("R", "B")
	lrows := []types.Tuple{
		{types.Int(1), types.Str("x")},
		{types.Int(1), types.Str("y")},
		{types.Int(2), types.Str("x")},
	}
	rrows := []types.Tuple{
		{types.Float(1), types.Str("x")},
		{types.Int(2), types.Str("y")},
	}
	j := NewHashJoin(
		NewValuesScan(schema.New(la, lb), lrows), NewValuesScan(schema.New(ra, rb), rrows),
		[]expr.Expr{expr.NewColRef(la), expr.NewColRef(lb)},
		[]expr.Expr{expr.NewColRef(ra), expr.NewColRef(rb)}, nil)
	rows := runAll(t, j)
	if len(rows) != 1 {
		t.Fatalf("rows: %v, want only (1,x)~(1.0,x)", rows)
	}
}

// TestHashSemiJoinMatchesDistinctProbe: the semi join emits each left row
// at most once, in left order, iff a right match exists.
func TestHashSemiJoinMatchesDistinctProbe(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lk, rk := intCol("L", "K"), intCol("R", "K")
	lrows := randTable(rng, 60, 10, 0.1)
	rrows := randTable(rng, 60, 10, 0.1)
	lsc := schema.New(lk, intCol("L", "P"))
	rsc := schema.New(rk, intCol("R", "P"))
	sj := NewHashSemiJoin(
		NewValuesScan(lsc, lrows), NewValuesScan(rsc, rrows),
		[]expr.Expr{expr.NewColRef(lk)}, []expr.Expr{expr.NewColRef(rk)})
	got := runAll(t, sj)

	// Reference: left rows whose key appears (non-NULL) on the right.
	keys := map[int64]bool{}
	for _, r := range rrows {
		if !r[0].IsNull() {
			k, _ := r[0].AsInt()
			keys[k] = true
		}
	}
	var want []types.Tuple
	for _, l := range lrows {
		if l[0].IsNull() {
			continue
		}
		if k, _ := l[0].AsInt(); keys[k] {
			want = append(want, l)
		}
	}
	if fmt.Sprint(rowStrings(got)) != fmt.Sprint(rowStrings(want)) {
		t.Fatalf("semi join:\ngot:  %v\nwant: %v", got, want)
	}
}

// TestHashJoinPlaceholderKeyErrors: like Cmp.Eval, evaluating a join key
// over a pending placeholder must error — the async rewriter keeps such
// joins above the ReqSync precisely because of this.
func TestHashJoinPlaceholderKeyErrors(t *testing.T) {
	lk, rk := intCol("L", "K"), intCol("R", "K")
	lrows := []types.Tuple{{types.Placeholder(1, 0)}}
	rrows := []types.Tuple{{types.Int(1)}}
	j := NewHashJoin(
		NewValuesScan(schema.New(lk), lrows), NewValuesScan(schema.New(rk), rrows),
		[]expr.Expr{expr.NewColRef(lk)}, []expr.Expr{expr.NewColRef(rk)}, nil)
	if _, err := Run(NewContext(), j); err == nil {
		t.Fatal("placeholder join key must error")
	}
}

// ---------------------------------------------------------------------------
// The batching win: equi-join via hash vs nested loop.

func equiJoinBench(b *testing.B, mk func(lsc, rsc *schema.Schema, lk, rk schema.Column) Operator) {
	const n = 2000
	lk, rk := intCol("L", "K"), intCol("R", "K")
	lsc, rsc := schema.New(lk, strCol("L", "P")), schema.New(rk, strCol("R", "P"))
	lrows := make([]types.Tuple, n)
	rrows := make([]types.Tuple, n)
	for i := 0; i < n; i++ {
		lrows[i] = types.Tuple{types.Int(int64(i)), types.Str(fmt.Sprintf("l%d", i))}
		rrows[i] = types.Tuple{types.Int(int64(i)), types.Str(fmt.Sprintf("r%d", i))}
	}
	lscan, rscan := NewValuesScan(lsc, lrows), NewValuesScan(rsc, rrows)
	op := mk(lsc, rsc, lk, rk)
	op.SetChild(0, lscan)
	op.SetChild(1, rscan)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := Run(NewContext(), op)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != n {
			b.Fatalf("rows: %d", len(rows))
		}
	}
}

// BenchmarkEquiJoin contrasts the nested-loop and hash implementations of
// the same 2000x2000 equi-join (the planner's before/after for PR 7).
func BenchmarkEquiJoin(b *testing.B) {
	b.Run("nestedloop", func(b *testing.B) {
		equiJoinBench(b, func(lsc, rsc *schema.Schema, lk, rk schema.Column) Operator {
			return NewNestedLoopJoin(nil, nil,
				expr.NewCmp(expr.EQ, expr.NewColRef(lk), expr.NewColRef(rk)))
		})
	})
	b.Run("hash", func(b *testing.B) {
		equiJoinBench(b, func(lsc, rsc *schema.Schema, lk, rk schema.Column) Operator {
			return NewHashJoin(nil, nil,
				[]expr.Expr{expr.NewColRef(lk)}, []expr.Expr{expr.NewColRef(rk)}, nil)
		})
	})
}
