package exec

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/types"
)

// ---------------------------------------------------------------------------
// Operator lifecycle contract harness.
//
// Every exec operator must satisfy:
//   1. Open → drain → Close runs cleanly and Close reports no error.
//   2. Re-open after exhaustion yields the same rows (dependent joins
//      re-open their right subtree once per outer binding, so this is a
//      load-bearing property, not a nicety).
//   3. Close is idempotent: closing an already-closed tree is a no-op.
//   4. After an error at ANY point — a child failing in Open or at any Next
//      position — closing the root must close every subtree (no leaked
//      open leaves) and a second Close must still be safe.

var errInjected = errors.New("injected fault")

// faultOp wraps an operator with a configurable failure point and records
// whether its subtree is currently open. It deliberately implements only
// the scalar Operator protocol so the contract runs exercise the
// NextBatchFrom adapter around non-batch operators too.
type faultOp struct {
	inner     Operator
	failOpen  bool
	failAfter int // fail on the (failAfter+1)-th Next; -1 = never
	nexts     int
	open      bool
}

func newFault(inner Operator) *faultOp { return &faultOp{inner: inner, failAfter: -1} }

func (f *faultOp) Schema() *schema.Schema { return f.inner.Schema() }
func (f *faultOp) Open(ctx *Context) error {
	f.nexts = 0
	if f.failOpen {
		return errInjected
	}
	if err := f.inner.Open(ctx); err != nil {
		return err
	}
	f.open = true
	return nil
}
func (f *faultOp) Next(ctx *Context) (types.Tuple, bool, error) {
	if f.failAfter >= 0 && f.nexts >= f.failAfter {
		return nil, false, errInjected
	}
	f.nexts++
	return f.inner.Next(ctx)
}
func (f *faultOp) Close() error {
	f.open = false
	return f.inner.Close()
}
func (f *faultOp) Children() []Operator { return []Operator{f.inner} }
func (f *faultOp) SetChild(i int, op Operator) {
	if i != 0 {
		panic("faultOp has a single child")
	}
	f.inner = op
}
func (f *faultOp) Name() string     { return "Fault" }
func (f *faultOp) Describe() string { return "" }

// contractCase builds a fresh operator tree plus the fault wrappers buried
// in it. mk must return an independent tree on every call.
type contractCase struct {
	name string
	mk   func() (Operator, []*faultOp)
}

func intRows(vals ...int64) []types.Tuple {
	out := make([]types.Tuple, len(vals))
	for i, v := range vals {
		out[i] = types.Tuple{types.Int(v)}
	}
	return out
}

func contractCases() []contractCase {
	pairSchema := func() (*schema.Schema, schema.Column, schema.Column) {
		a, b := strCol("T", "K"), intCol("T", "N")
		return schema.New(a, b), a, b
	}
	pairs := func(sc *schema.Schema) *ValuesScan {
		return NewValuesScan(sc, []types.Tuple{
			{types.Str("a"), types.Int(1)},
			{types.Str("b"), types.Int(2)},
			{types.Str("a"), types.Int(3)},
			{types.Str("c"), types.Int(2)},
		})
	}
	return []contractCase{
		{"ValuesScan", func() (Operator, []*faultOp) {
			sc, _, _ := pairSchema()
			return pairs(sc), nil
		}},
		{"Filter", func() (Operator, []*faultOp) {
			sc, _, n := pairSchema()
			f := newFault(pairs(sc))
			pred := expr.NewCmp(expr.GT, expr.NewColRef(n), expr.NewLiteral(types.Int(1)))
			return NewFilter(f, pred), []*faultOp{f}
		}},
		{"Project", func() (Operator, []*faultOp) {
			sc, _, n := pairSchema()
			f := newFault(pairs(sc))
			out := schema.New(intCol("P", "N2"))
			return NewProject(f, []expr.Expr{expr.NewArith(expr.Add, expr.NewColRef(n), expr.NewLiteral(types.Int(10)))}, out), []*faultOp{f}
		}},
		{"Sort", func() (Operator, []*faultOp) {
			sc, k, n := pairSchema()
			f := newFault(pairs(sc))
			return NewSort(f, []SortKey{{Expr: expr.NewColRef(n)}, {Expr: expr.NewColRef(k)}}), []*faultOp{f}
		}},
		{"Limit", func() (Operator, []*faultOp) {
			sc, _, _ := pairSchema()
			f := newFault(pairs(sc))
			return NewLimit(f, 2), []*faultOp{f}
		}},
		{"Distinct", func() (Operator, []*faultOp) {
			sc, k, _ := pairSchema()
			f := newFault(pairs(sc))
			out := schema.New(strCol("D", "K"))
			return NewDistinct(NewProject(f, []expr.Expr{expr.NewColRef(k)}, out)), []*faultOp{f}
		}},
		{"Aggregate", func() (Operator, []*faultOp) {
			sc, k, n := pairSchema()
			f := newFault(pairs(sc))
			return NewAggregate(f,
				[]expr.Expr{expr.NewColRef(k)},
				[]schema.Column{strCol("G", "K")},
				[]AggSpec{{Func: AggSum, Arg: expr.NewColRef(n), OutCol: intCol("G", "S")}}), []*faultOp{f}
		}},
		{"UnionAll", func() (Operator, []*faultOp) {
			la := intCol("L", "N")
			lf := newFault(NewValuesScan(schema.New(la), intRows(1, 2)))
			rf := newFault(NewValuesScan(schema.New(intCol("R", "N")), intRows(3)))
			u, err := NewUnionAll(lf, rf)
			if err != nil {
				panic(err)
			}
			return u, []*faultOp{lf, rf}
		}},
		{"NestedLoopJoin", func() (Operator, []*faultOp) {
			la, ra := intCol("L", "N"), intCol("R", "N")
			lf := newFault(NewValuesScan(schema.New(la), intRows(1, 2, 3)))
			rf := newFault(NewValuesScan(schema.New(ra), intRows(2, 3, 4)))
			pred := expr.NewCmp(expr.LT, expr.NewColRef(la), expr.NewColRef(ra))
			return NewNestedLoopJoin(lf, rf, pred), []*faultOp{lf, rf}
		}},
		{"HashJoin", func() (Operator, []*faultOp) {
			la, ra := intCol("L", "N"), intCol("R", "N")
			lf := newFault(NewValuesScan(schema.New(la), intRows(1, 2, 3)))
			rf := newFault(NewValuesScan(schema.New(ra), intRows(2, 3, 3, 4)))
			return NewHashJoin(lf, rf,
				[]expr.Expr{expr.NewColRef(la)}, []expr.Expr{expr.NewColRef(ra)}, nil), []*faultOp{lf, rf}
		}},
		{"HashSemiJoin", func() (Operator, []*faultOp) {
			la, ra := intCol("L", "N"), intCol("R", "N")
			lf := newFault(NewValuesScan(schema.New(la), intRows(1, 2, 3)))
			rf := newFault(NewValuesScan(schema.New(ra), intRows(2, 3, 3, 4)))
			return NewHashSemiJoin(lf, rf,
				[]expr.Expr{expr.NewColRef(la)}, []expr.Expr{expr.NewColRef(ra)}), []*faultOp{lf, rf}
		}},
		{"DependentJoin", func() (Operator, []*faultOp) {
			term := strCol("L", "Term")
			lf := newFault(NewValuesScan(schema.New(term), []types.Tuple{
				{types.Str("ab")}, {types.Str("xyz")},
			}))
			src := &fakeSource{name: "WC", rowsFor: func(arg string) []types.Tuple {
				return []types.Tuple{{types.Int(int64(len(arg)))}}
			}}
			ev := NewEVScan(src, []expr.Expr{expr.NewColRef(term)}, fakeSchema("V"))
			return NewDependentJoin(lf, ev, "V"), []*faultOp{lf}
		}},
		{"EVScan", func() (Operator, []*faultOp) {
			src := &fakeSource{name: "WC", rowsFor: func(arg string) []types.Tuple {
				return []types.Tuple{{types.Int(int64(len(arg)))}}
			}}
			return NewEVScan(src, []expr.Expr{expr.NewLiteral(types.Str("abc"))}, fakeSchema("V")), nil
		}},
		{"HashSemiJoinNullMultiKey", func() (Operator, []*faultOp) {
			lk, ln := strCol("L", "K"), intCol("L", "N")
			rk, rn := strCol("R", "K"), intCol("R", "N")
			lf := newFault(NewValuesScan(schema.New(lk, ln), []types.Tuple{
				{types.Str("a"), types.Int(1)},
				{types.Str("b"), types.Null()},
				{types.Null(), types.Int(2)},
				{types.Str("c"), types.Int(2)},
			}))
			rf := newFault(NewValuesScan(schema.New(rk, rn), []types.Tuple{
				{types.Str("a"), types.Int(1)},
				{types.Str("b"), types.Int(2)},
				{types.Null(), types.Int(1)},
			}))
			return NewHashSemiJoin(lf, rf,
				[]expr.Expr{expr.NewColRef(lk), expr.NewColRef(ln)},
				[]expr.Expr{expr.NewColRef(rk), expr.NewColRef(rn)}), []*faultOp{lf, rf}
		}},
		{"DependentJoinBatchBound", func() (Operator, []*faultOp) {
			term := strCol("L", "Term")
			lf := newFault(NewValuesScan(schema.New(term), []types.Tuple{
				{types.Str("ab")}, {types.Str("xyz")},
			}))
			src := &fakeSource{name: "WC", rowsFor: func(arg string) []types.Tuple {
				return []types.Tuple{{types.Int(int64(len(arg)))}}
			}}
			ev := NewEVScan(src, []expr.Expr{expr.NewColRef(term)}, fakeSchema("V"))
			return NewDependentJoin(lf, &batchBoundEV{EVScan: ev}, "V"), []*faultOp{lf}
		}},
	}
}

// batchBoundEV wraps an EVScan with a BindBatch implementation that
// services each frame through the scalar protocol — a pump-free stand-in
// for AEVScan's batch registration, so the suite can drive
// DependentJoin.nextBatchBound without the async machinery.
type batchBoundEV struct {
	*EVScan
}

func (b *batchBoundEV) BindBatch(ctx *Context, frames []map[schema.AttrID]types.Value) ([][]types.Tuple, bool, error) {
	if len(frames) == 0 {
		return nil, true, nil // capability probe
	}
	rows := make([][]types.Tuple, len(frames))
	for fi, frame := range frames {
		ctx.Env.PushFrame(frame)
		err := b.EVScan.Open(ctx)
		if err == nil {
			for {
				t, ok, nerr := b.EVScan.Next(ctx)
				if nerr != nil {
					err = nerr
					break
				}
				if !ok {
					break
				}
				rows[fi] = append(rows[fi], t)
			}
		}
		cerr := b.EVScan.Close()
		ctx.Env.PopFrame()
		if err == nil {
			err = cerr
		}
		if err != nil {
			return nil, false, err
		}
	}
	return rows, true, nil
}

// TestDependentJoinBatchBoundMatchesScalar: the batch-bound dependent-join
// path must be invisible — same rows in the same order, and the same
// number of source calls, as the per-tuple protocol — at every batch
// granularity including ones that split the outer stream mid-batch.
func TestDependentJoinBatchBoundMatchesScalar(t *testing.T) {
	outer := []types.Tuple{
		{types.Str("ab")}, {types.Str("xyz")}, {types.Str("none")},
		{types.Str("ab")}, {types.Str("q")},
	}
	rowsFor := func(arg string) []types.Tuple {
		if arg == "none" {
			return nil // zero-row binding: the join must emit nothing for it
		}
		out := []types.Tuple{{types.Int(int64(len(arg)))}}
		if len(arg) > 2 {
			out = append(out, types.Tuple{types.Int(int64(-len(arg)))})
		}
		return out
	}
	build := func(batched bool) (Operator, *fakeSource) {
		term := strCol("L", "Term")
		left := NewValuesScan(schema.New(term), outer)
		src := &fakeSource{name: "WC", rowsFor: rowsFor}
		var right Operator = NewEVScan(src, []expr.Expr{expr.NewColRef(term)}, fakeSchema("V"))
		if batched {
			right = &batchBoundEV{EVScan: right.(*EVScan)}
		}
		return NewDependentJoin(left, right, "V"), src
	}
	for _, bs := range []int{1, 3, 256} {
		scalarOp, scalarSrc := build(false)
		ctx := NewContext()
		ctx.BatchSize = bs
		want, err := Run(ctx, scalarOp)
		if err != nil {
			t.Fatalf("batch %d scalar: %v", bs, err)
		}
		batchOp, batchSrc := build(true)
		ctx = NewContext()
		ctx.BatchSize = bs
		got, err := Run(ctx, batchOp)
		if err != nil {
			t.Fatalf("batch %d bound: %v", bs, err)
		}
		if fmt.Sprint(rowStrings(want)) != fmt.Sprint(rowStrings(got)) {
			t.Errorf("batch %d: rows diverge\nscalar: %v\nbound:  %v", bs, want, got)
		}
		if scalarSrc.callCount() != batchSrc.callCount() {
			t.Errorf("batch %d: calls diverge: scalar %d, bound %d",
				bs, scalarSrc.callCount(), batchSrc.callCount())
		}
	}
}

// TestHashSemiJoinNullAndMultiKey pins the semi-join's key semantics: a
// NULL in any key column matches nothing (on either side), and
// multi-column keys must agree on every column, not just the hash.
func TestHashSemiJoinNullAndMultiKey(t *testing.T) {
	lk, ln := strCol("L", "K"), intCol("L", "N")
	rk, rn := strCol("R", "K"), intCol("R", "N")
	left := NewValuesScan(schema.New(lk, ln), []types.Tuple{
		{types.Str("a"), types.Int(1)}, // matches ("a",1)
		{types.Str("a"), types.Int(2)}, // key exists per-column but not pairwise
		{types.Str("b"), types.Null()}, // NULL probe key: dropped
		{types.Null(), types.Int(1)},   // NULL probe key: dropped
		{types.Str("c"), types.Int(2)}, // no match
		{types.Str("a"), types.Int(1)}, // duplicate probe: emitted again
	})
	right := NewValuesScan(schema.New(rk, rn), []types.Tuple{
		{types.Str("a"), types.Int(1)},
		{types.Str("b"), types.Int(2)},
		{types.Null(), types.Int(2)}, // NULL build key: never matches ("c",2)
		{types.Str("a"), types.Int(1)},
	})
	j := NewHashSemiJoin(left, right,
		[]expr.Expr{expr.NewColRef(lk), expr.NewColRef(ln)},
		[]expr.Expr{expr.NewColRef(rk), expr.NewColRef(rn)})
	rows := runAll(t, j)
	want := "[<a, 1> <a, 1>]"
	if got := fmt.Sprint(rowStrings(rows)); got != want {
		t.Errorf("semi-join output = %v, want %v", got, want)
	}
}

func rowStrings(rows []types.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

// TestOperatorContractCleanRuns checks properties 1–3: clean run, identical
// re-open-after-exhaustion output, and idempotent Close.
func TestOperatorContractCleanRuns(t *testing.T) {
	for _, tc := range contractCases() {
		t.Run(tc.name, func(t *testing.T) {
			op, leaves := tc.mk()
			first := runAll(t, op)
			if tc.name != "ValuesScan" && tc.name != "EVScan" && len(first) == 0 {
				t.Fatalf("degenerate fixture: no rows")
			}
			for i, f := range leaves {
				if f.open {
					t.Errorf("leaf %d left open after Run", i)
				}
			}
			// Re-open after exhaustion: same instance, same rows.
			second := runAll(t, op)
			if fmt.Sprint(rowStrings(first)) != fmt.Sprint(rowStrings(second)) {
				t.Errorf("re-open changed output:\nfirst:  %v\nsecond: %v", first, second)
			}
			// Idempotent Close (Run already closed it once).
			if err := op.Close(); err != nil {
				t.Errorf("second Close errored: %v", err)
			}
			if err := op.Close(); err != nil {
				t.Errorf("third Close errored: %v", err)
			}
		})
	}
}

// TestOperatorContractCloseAfterError checks property 4: for every fault
// leaf and every failure point (Open, first Next, second Next), Run's error
// path must close the whole tree — no leaf stays open — and closing again
// stays safe.
func TestOperatorContractCloseAfterError(t *testing.T) {
	for _, tc := range contractCases() {
		t.Run(tc.name, func(t *testing.T) {
			_, probe := tc.mk()
			for leaf := range probe {
				for _, point := range []struct {
					name      string
					failOpen  bool
					failAfter int
				}{
					{"open", true, -1},
					{"next0", false, 0},
					{"next1", false, 1},
				} {
					op, leaves := tc.mk()
					leaves[leaf].failOpen = point.failOpen
					leaves[leaf].failAfter = point.failAfter
					_, err := Run(NewContext(), op)
					if !errors.Is(err, errInjected) {
						t.Fatalf("leaf %d %s: Run error = %v, want injected fault", leaf, point.name, err)
					}
					for i, f := range leaves {
						if f.open {
							t.Errorf("leaf %d %s: leaf %d left open after error path", leaf, point.name, i)
						}
					}
					if err := op.Close(); err != nil {
						t.Errorf("leaf %d %s: Close after error path errored: %v", leaf, point.name, err)
					}
				}
			}
		})
	}
}
