package exec

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/types"
)

// Filter passes through tuples satisfying a predicate (the "Select"
// operator of the paper's figures; named Filter here to avoid confusion
// with the SQL keyword).
type Filter struct {
	Child Operator
	Pred  expr.Expr
}

// NewFilter builds a selection over child.
func NewFilter(child Operator, pred expr.Expr) *Filter {
	return &Filter{Child: child, Pred: pred}
}

// Schema implements Operator.
func (f *Filter) Schema() *schema.Schema { return f.Child.Schema() }

// Open implements Operator.
func (f *Filter) Open(ctx *Context) error {
	if err := f.Child.Open(ctx); err != nil {
		return err
	}
	return bindAll("Filter", f.Child.Schema(), f.Pred)
}

// Next implements Operator.
func (f *Filter) Next(ctx *Context) (types.Tuple, bool, error) {
	for {
		t, ok, err := f.Child.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		v, err := f.Pred.Eval(ctx.Env, t)
		if err != nil {
			return nil, false, fmt.Errorf("Filter %s: %w", f.Pred, err)
		}
		if v.Truthy() {
			return t, true, nil
		}
	}
}

// NextBatch implements BatchOperator: the predicate runs over whole child
// batches, with survivors collected into a fresh slice (child batches may
// be views of the child's internal storage and are never mutated in
// place). Empty survivor sets loop to the next child batch so a true
// result is always non-empty.
func (f *Filter) NextBatch(ctx *Context, max int) (Batch, bool, error) {
	for {
		in, ok, err := NextBatchFrom(ctx, f.Child, max)
		if err != nil || !ok {
			return nil, false, err
		}
		var out Batch
		for _, t := range in {
			v, err := f.Pred.Eval(ctx.Env, t)
			if err != nil {
				return nil, false, fmt.Errorf("Filter %s: %w", f.Pred, err)
			}
			if v.Truthy() {
				out = append(out, t)
			}
		}
		if len(out) > 0 {
			return out, true, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Child.Close() }

// Children implements Operator.
func (f *Filter) Children() []Operator { return []Operator{f.Child} }

// SetChild implements Operator.
func (f *Filter) SetChild(i int, op Operator) {
	if i != 0 {
		panic("Filter has a single child")
	}
	f.Child = op
}

// Name implements Operator.
func (f *Filter) Name() string { return "Select" }

// Describe implements Operator.
func (f *Filter) Describe() string { return f.Pred.String() }

// Project evaluates one expression per output column. Plain column
// references pass through with their original attribute identity, so
// operators above a projection (Sort, ReqSync) can still address them;
// computed expressions get fresh AttrIDs assigned by the planner.
type Project struct {
	Child Operator
	Exprs []expr.Expr
	Out   *schema.Schema
}

// NewProject builds a projection.
func NewProject(child Operator, exprs []expr.Expr, out *schema.Schema) *Project {
	return &Project{Child: child, Exprs: exprs, Out: out}
}

// Schema implements Operator.
func (p *Project) Schema() *schema.Schema { return p.Out }

// Open implements Operator.
func (p *Project) Open(ctx *Context) error {
	if err := p.Child.Open(ctx); err != nil {
		return err
	}
	return bindAll("Project", p.Child.Schema(), p.Exprs...)
}

// Next implements Operator.
func (p *Project) Next(ctx *Context) (types.Tuple, bool, error) {
	t, ok, err := p.Child.Next(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(types.Tuple, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e.Eval(ctx.Env, t)
		if err != nil {
			return nil, false, fmt.Errorf("Project %s: %w", e, err)
		}
		out[i] = v
	}
	return out, true, nil
}

// NextBatch implements BatchOperator by mapping the projection over a
// whole child batch.
func (p *Project) NextBatch(ctx *Context, max int) (Batch, bool, error) {
	in, ok, err := NextBatchFrom(ctx, p.Child, max)
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(Batch, len(in))
	for j, t := range in {
		row := make(types.Tuple, len(p.Exprs))
		for i, e := range p.Exprs {
			v, err := e.Eval(ctx.Env, t)
			if err != nil {
				return nil, false, fmt.Errorf("Project %s: %w", e, err)
			}
			row[i] = v
		}
		out[j] = row
	}
	return out, true, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Child.Close() }

// Children implements Operator.
func (p *Project) Children() []Operator { return []Operator{p.Child} }

// SetChild implements Operator.
func (p *Project) SetChild(i int, op Operator) {
	if i != 0 {
		panic("Project has a single child")
	}
	p.Child = op
}

// Name implements Operator.
func (p *Project) Name() string { return "Project" }

// Describe implements Operator.
func (p *Project) Describe() string {
	s := ""
	for i, e := range p.Exprs {
		if i > 0 {
			s += ", "
		}
		s += e.String()
	}
	return s
}

// PassThroughExprs reports whether every projection expression is a plain
// column reference (no computation). The async rewriter uses this: a
// pass-through projection never "depends on" attribute values and only
// clashes with a ReqSync if it drops one of its attributes.
func (p *Project) PassThroughExprs() bool {
	for _, e := range p.Exprs {
		if _, ok := e.(*expr.ColRef); !ok {
			return false
		}
	}
	return true
}
