// Package exec implements the iterator-based query executor of the WSQ/DSQ
// reproduction: the classic Open/Next/Close operator protocol ([Gra93], as
// assumed throughout Section 4 of the paper) with table scans, filters,
// projections, nested-loop and dependent joins, sorting, aggregation, and
// external virtual-table scans (EVScan).
//
// Operators expose their children for structural rewrites; the
// asynchronous-iteration rewriter (package async) relies on this to insert,
// percolate, and consolidate ReqSync operators without the executor knowing
// anything about asynchrony — exactly the paper's claim that "no other
// query plan operators need to be modified".
package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/types"
)

// DegradePolicy selects what happens to tuples whose external call
// ultimately failed (after the request pump exhausted its retries) during
// asynchronous iteration. It is a per-query choice: a dashboard may prefer
// partial rows over an error, a correctness test wants the error.
type DegradePolicy uint8

const (
	// DegradeFail errors the whole query on a failed call (the default).
	DegradeFail DegradePolicy = iota
	// DegradeDrop cancels the tuples waiting on the failed call, exactly as
	// if the call had returned zero rows.
	DegradeDrop
	// DegradePartial emits the waiting tuples with the call's attributes
	// patched to NULL.
	DegradePartial
)

// String renders the policy's flag spelling.
func (d DegradePolicy) String() string {
	switch d {
	case DegradeDrop:
		return "drop"
	case DegradePartial:
		return "partial"
	default:
		return "fail"
	}
}

// ParseDegrade parses a policy name ("fail", "drop", "partial"; empty means
// fail).
func ParseDegrade(s string) (DegradePolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "fail":
		return DegradeFail, nil
	case "drop":
		return DegradeDrop, nil
	case "partial":
		return DegradePartial, nil
	default:
		return DegradeFail, fmt.Errorf("unknown degradation policy %q (want fail, drop, or partial)", s)
	}
}

// Context carries per-execution state shared by all operators of one plan:
// the correlated-binding environment used by dependent joins, the
// cancellation scope, and counters for tests and EXPLAIN ANALYZE-style
// diagnostics.
type Context struct {
	// Ctx bounds the execution: operators that block (external calls, pump
	// waits) or loop (Run) honor its deadline and cancellation. Never nil.
	Ctx context.Context
	Env *expr.Env
	// Degrade selects the failed-call handling for this query's ReqSyncs.
	Degrade DegradePolicy
	// RetryCall, when set, wraps synchronous external calls (EVScan) in the
	// engine-wide retry policy. Asynchronous calls retry inside the pump.
	RetryCall func(ctx context.Context, do func() ([]types.Tuple, error)) ([]types.Tuple, error)
	// Trace is the root of the query's span tree when the plan was
	// instrumented (Instrument); nil otherwise. Operators never write it —
	// the decorators do — but consumers reached through the context (the
	// server, EXPLAIN ANALYZE) read the finished tree from here.
	Trace *obs.Span
	// BatchSize overrides the executor's batch granularity; zero means
	// DefaultBatchSize. wsqbench sweeps it to chart the batching win.
	BatchSize int
	Stats     Stats
}

// batchSize resolves the effective batch granularity.
func (c *Context) batchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return DefaultBatchSize
}

// NewContext returns a fresh execution context with no deadline (for
// tests and the REPL; servers use NewContextWith).
func NewContext() *Context {
	return NewContextWith(nil)
}

// NewContextWith returns a fresh execution context bounded by ctx.
func NewContextWith(ctx context.Context) *Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Context{Ctx: ctx, Env: &expr.Env{}}
}

// Stats counts executor events of interest to tests and benchmarks.
type Stats struct {
	ExternalCalls int64 // EVScan/AEVScan calls issued
	TuplesOut     int64 // tuples produced at the root
	// DegradedCalls counts external calls whose terminal failure was
	// absorbed by a drop/partial degradation policy instead of erroring the
	// query.
	DegradedCalls int64
}

// Operator is the iterator interface every plan node implements.
type Operator interface {
	// Schema describes the operator's output columns.
	Schema() *schema.Schema
	// Open prepares the operator for iteration. Operators may be re-opened
	// after exhaustion (dependent joins re-open their right subtree once
	// per outer tuple).
	Open(ctx *Context) error
	// Next produces the next tuple; ok is false at end of stream.
	Next(ctx *Context) (t types.Tuple, ok bool, err error)
	// Close releases resources. Close must be idempotent.
	Close() error
	// Children returns the operator's inputs (empty for leaves).
	Children() []Operator
	// SetChild replaces the i-th child (used by plan rewrites).
	SetChild(i int, op Operator)
	// Name is the operator's display name for EXPLAIN output.
	Name() string
	// Describe returns a one-line parameter summary for EXPLAIN output.
	Describe() string
}

// Run drains op to completion, returning all produced tuples. It opens
// and closes the operator, pulling batch-at-a-time so a batch-native
// pipeline never drops to per-tuple dispatch at the root. On every error
// path the operator is still closed and any Close error is joined onto
// the primary one — a failed Next must not mask (or be masked by) a
// resource-release failure.
func Run(ctx *Context, op Operator) ([]types.Tuple, error) {
	if err := op.Open(ctx); err != nil {
		return nil, errors.Join(err, op.Close())
	}
	var out []types.Tuple
	for {
		if ctx.Ctx != nil {
			if err := ctx.Ctx.Err(); err != nil {
				return nil, errors.Join(err, op.Close())
			}
		}
		b, ok, err := NextBatchFrom(ctx, op, ctx.batchSize())
		if err != nil {
			return nil, errors.Join(err, op.Close())
		}
		if !ok {
			break
		}
		ctx.Stats.TuplesOut += int64(len(b))
		out = append(out, b...)
	}
	if err := op.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// Explain renders the plan tree, one operator per line, children indented.
// The output deliberately mirrors the figures of the WSQ/DSQ paper
// ("Dependent Join", "EVScan", "AEVScan", "ReqSync", ...), so tests can
// compare generated plans against the paper's.
func Explain(op Operator) string {
	var b strings.Builder
	explainInto(&b, op, 0)
	return b.String()
}

func explainInto(b *strings.Builder, op Operator, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(op.Name())
	if d := op.Describe(); d != "" {
		b.WriteString(": ")
		b.WriteString(d)
	}
	b.WriteByte('\n')
	for _, c := range op.Children() {
		explainInto(b, c, depth+1)
	}
}

// Shape returns the nesting structure of a plan as a compact string, e.g.
// "Sort(ReqSync(DependentJoin(Scan,AEVScan)))". Tests compare shapes
// against the paper's figures without depending on parameter formatting.
func Shape(op Operator) string {
	kids := op.Children()
	if len(kids) == 0 {
		return op.Name()
	}
	parts := make([]string, len(kids))
	for i, c := range kids {
		parts[i] = Shape(c)
	}
	return op.Name() + "(" + strings.Join(parts, ",") + ")"
}

// bindAll binds the expressions against a schema, annotating errors with
// the operator name.
func bindAll(name string, s *schema.Schema, exprs ...expr.Expr) error {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if err := e.Bind(s); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}
