package exec

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/types"
)

// ---------------------------------------------------------------------------
// Batch protocol: NextBatchFrom adapter, window semantics, max discipline.

func seqValues(n int) (*ValuesScan, schema.Column) {
	a := intCol("T", "A")
	rows := make([]types.Tuple, n)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i))}
	}
	return NewValuesScan(schema.New(a), rows), a
}

// TestValuesScanBatchWindows: a batch-native leaf hands out windows of at
// most max rows, in order, with ok=false exactly at exhaustion.
func TestValuesScanBatchWindows(t *testing.T) {
	v, _ := seqValues(5)
	ctx := NewContext()
	if err := v.Open(ctx); err != nil {
		t.Fatal(err)
	}
	var sizes []int
	var all []types.Tuple
	for {
		b, ok, err := v.NextBatch(ctx, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if len(b) == 0 {
			t.Fatal("ok=true with empty batch violates the protocol")
		}
		sizes = append(sizes, len(b))
		all = append(all, b...)
	}
	if len(sizes) != 3 || sizes[0] != 2 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("batch sizes: %v, want [2 2 1]", sizes)
	}
	for i, tup := range all {
		if got, _ := tup[0].AsInt(); got != int64(i) {
			t.Fatalf("row %d: %v", i, tup)
		}
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestNextBatchFromAdapterWrapsScalarOperators: a scalar-only operator
// (faultOp implements just Next) is batched by the adapter, honoring max
// and the ctx default when max <= 0.
func TestNextBatchFromAdapterWrapsScalarOperators(t *testing.T) {
	v, _ := seqValues(10)
	f := newFault(v) // scalar-only wrapper
	ctx := NewContext()
	ctx.BatchSize = 4
	if err := f.Open(ctx); err != nil {
		t.Fatal(err)
	}
	b, ok, err := NextBatchFrom(ctx, f, 3)
	if err != nil || !ok || len(b) != 3 {
		t.Fatalf("explicit max: len=%d ok=%v err=%v, want 3", len(b), ok, err)
	}
	b, ok, err = NextBatchFrom(ctx, f, 0)
	if err != nil || !ok || len(b) != 4 {
		t.Fatalf("ctx default max: len=%d ok=%v err=%v, want 4 (ctx.BatchSize)", len(b), ok, err)
	}
	b, ok, err = NextBatchFrom(ctx, f, 100)
	if err != nil || !ok || len(b) != 3 {
		t.Fatalf("tail: len=%d ok=%v err=%v, want remaining 3", len(b), ok, err)
	}
	if _, ok, err = NextBatchFrom(ctx, f, 100); ok || err != nil {
		t.Fatalf("exhausted: ok=%v err=%v", ok, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLimitNeverOverdraws: Limit must cap the batch max it forwards, so a
// child never produces more rows than the limit — under asynchronous
// iteration an overdraw would register extra external calls.
func TestLimitNeverOverdraws(t *testing.T) {
	v, _ := seqValues(10)
	f := newFault(v)
	l := NewLimit(f, 3)
	rows := runAll(t, l)
	if len(rows) != 3 {
		t.Fatalf("rows: %d, want 3", len(rows))
	}
	if f.nexts > 3 {
		t.Fatalf("Limit(3) pulled %d child rows — overdraw", f.nexts)
	}
}

// TestFilterBatchesAreFreshSlices: Filter's survivor batches must not alias
// the child's storage — a consumer buffering batch i must not see it
// mutate when batch i+1 is produced.
func TestFilterBatchesAreFreshSlices(t *testing.T) {
	v, a := seqValues(8)
	fl := NewFilter(v, keepPred(a))
	ctx := NewContext()
	ctx.BatchSize = 4
	if err := fl.Open(ctx); err != nil {
		t.Fatal(err)
	}
	b1, ok, err := fl.NextBatch(ctx, 4)
	if err != nil || !ok {
		t.Fatal(err)
	}
	snapshot := rowStrings(b1)
	if _, _, err := fl.NextBatch(ctx, 4); err != nil {
		t.Fatal(err)
	}
	for i := range b1 {
		if b1[i].String() != snapshot[i] {
			t.Fatalf("batch 1 mutated after producing batch 2: %v vs %v", b1[i], snapshot[i])
		}
	}
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRunBatchSizeEquivalence: results are identical across batch sizes —
// batching is an execution granularity, never a semantics change.
func TestRunBatchSizeEquivalence(t *testing.T) {
	mk := func() Operator {
		v, a := seqValues(50)
		return NewSort(NewFilter(v, keepPred(a)),
			[]SortKey{{Expr: expr.NewColRef(a), Desc: true}})
	}
	var base []string
	for i, size := range []int{0, 1, 7, 256} {
		ctx := NewContext()
		ctx.BatchSize = size
		rows, err := Run(ctx, mk())
		if err != nil {
			t.Fatal(err)
		}
		got := rowStrings(rows)
		if i == 0 {
			base = got
			continue
		}
		if len(got) != len(base) {
			t.Fatalf("batch size %d changed row count: %d vs %d", size, len(got), len(base))
		}
		for j := range got {
			if got[j] != base[j] {
				t.Fatalf("batch size %d changed row %d: %s vs %s", size, j, got[j], base[j])
			}
		}
	}
}

// keepPred keeps rows with a > 2.
func keepPred(a schema.Column) expr.Expr {
	return expr.NewCmp(expr.GT, expr.NewColRef(a), expr.NewLiteral(types.Int(2)))
}
