package exec

import (
	"time"

	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/types"
)

// SpanExtras is implemented by operators that expose extra per-span
// counters beyond time and cardinality — ReqSync reports placeholder
// patches/expansions/cancellations, the external scans report calls
// issued. The instrumented executor collects the extras when the
// operator closes.
type SpanExtras interface {
	SpanExtras() map[string]int64
}

// TraceChildren is implemented by operators whose work partly runs
// concurrently with the iterator protocol — AEVScan's pump calls,
// EVScan's inline engine calls — and can surface it as spans. The
// instrumented executor collects them at Close and attaches them as
// async children of the operator's span (obs.Span.AddAsyncChild), so
// the off-tree work becomes visible without perturbing the plan-shaped
// timing invariants. Implementations must hand each span out exactly
// once (Close runs repeatedly).
type TraceChildren interface {
	TraceChildren() []*obs.Span
}

// Instrument wraps every operator of a plan in a timing decorator and
// returns the instrumented plan plus the root of its span tree. The
// span tree mirrors the plan tree exactly (span parentage == operator
// parentage), and each span accumulates the *inclusive* wall time spent
// inside its operator's Open/Next/Close calls: a parent's time includes
// its children's, so the root span's duration is the query's execution
// time and Span.Self exposes per-operator exclusive time.
//
// Because the decorators nest through the ordinary iterator protocol,
// time an operator spends blocked — a ReqSync waiting on the request
// pump, an EVScan inside a synchronous engine call — is attributed to
// that operator's self time. This is the Volcano-style per-operator
// profile the paper's latency-hiding claim is verified against.
//
// Instrument mutates the plan (children are replaced by their wrapped
// forms); plans are built per-query, so this is safe. It must run after
// any structural rewrites (async.Rewrite).
func Instrument(op Operator) (Operator, *obs.Span) {
	w := instrument(op)
	return w, w.span
}

func instrument(op Operator) *spanOp {
	span := obs.NewSpan(op.Name(), op.Describe())
	for i, c := range op.Children() {
		cw := instrument(c)
		span.AddChild(cw.span)
		op.SetChild(i, cw)
	}
	return &spanOp{inner: op, span: span}
}

// spanOp is the timing decorator. It is transparent to plan inspection:
// Name, Describe, Schema, and the child accessors all delegate, so
// Explain and Shape render the instrumented tree identically.
type spanOp struct {
	inner Operator
	span  *obs.Span
	// nBatches counts NextBatch/BindBatch rounds so EXPLAIN ANALYZE can
	// report per-operator batch granularity (rows/batch = Rows/batches).
	nBatches int64
}

func (w *spanOp) Schema() *schema.Schema { return w.inner.Schema() }

func (w *spanOp) Open(ctx *Context) error {
	start := time.Now()
	if w.span.Opens == 0 {
		w.span.Start = start
	}
	w.span.Opens++
	err := w.inner.Open(ctx)
	w.span.Dur += time.Since(start)
	return err
}

func (w *spanOp) Next(ctx *Context) (t types.Tuple, ok bool, err error) {
	start := time.Now()
	t, ok, err = w.inner.Next(ctx)
	w.span.Dur += time.Since(start)
	if ok {
		w.span.Rows++
	}
	return t, ok, err
}

// NextBatch implements BatchOperator: the whole batch pull (native or
// adapted) is timed as one protocol call, which is exactly the
// per-operator overhead the batching refactor removes.
func (w *spanOp) NextBatch(ctx *Context, max int) (Batch, bool, error) {
	start := time.Now()
	b, ok, err := NextBatchFrom(ctx, w.inner, max)
	w.span.Dur += time.Since(start)
	if ok {
		w.span.Rows += int64(len(b))
		w.nBatches++
	}
	return b, ok, err
}

// BindBatch forwards batch binding to the decorated operator when it
// supports it. Each bound frame counts as one logical Open — a dependent
// join driving the per-tuple path would have re-opened the inner subtree
// once per outer binding, and the trace must report the same logical
// work either way.
func (w *spanOp) BindBatch(ctx *Context, frames []map[schema.AttrID]types.Value) ([][]types.Tuple, bool, error) {
	bb, isBB := w.inner.(BindingBatcher)
	if !isBB {
		return nil, false, nil
	}
	if len(frames) == 0 {
		return bb.BindBatch(ctx, frames) // capability probe: no timing, no counters
	}
	start := time.Now()
	if w.span.Opens == 0 {
		w.span.Start = start
	}
	rows, ok, err := bb.BindBatch(ctx, frames)
	w.span.Dur += time.Since(start)
	if ok {
		w.span.Opens += int64(len(frames))
		for _, rs := range rows {
			w.span.Rows += int64(len(rs))
		}
		w.nBatches++
	}
	return rows, ok, err
}

func (w *spanOp) Close() error {
	start := time.Now()
	err := w.inner.Close()
	w.span.Dur += time.Since(start)
	// Operator extras are cumulative over the operator's life, and Close
	// may run many times (a dependent join closes its inner subtree once
	// per outer binding, error paths close eagerly, Run closes again) —
	// so overwrite with the latest snapshot rather than accumulating.
	if ex, ok := w.inner.(SpanExtras); ok {
		for k, v := range ex.SpanExtras() {
			w.span.SetExtra(k, v)
		}
	}
	if w.nBatches > 0 {
		w.span.SetExtra("batches", w.nBatches)
	}
	if tc, ok := w.inner.(TraceChildren); ok {
		for _, c := range tc.TraceChildren() {
			w.span.AddAsyncChild(c)
		}
	}
	return err
}

func (w *spanOp) Children() []Operator        { return w.inner.Children() }
func (w *spanOp) SetChild(i int, op Operator) { w.inner.SetChild(i, op) }
func (w *spanOp) Name() string                { return w.inner.Name() }
func (w *spanOp) Describe() string            { return w.inner.Describe() }

// Unwrap exposes the decorated operator (tests reach through the
// instrumentation to assert on concrete operator state).
func (w *spanOp) Unwrap() Operator { return w.inner }
