package exec

import (
	"time"

	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/types"
)

// SpanExtras is implemented by operators that expose extra per-span
// counters beyond time and cardinality — ReqSync reports placeholder
// patches/expansions/cancellations, the external scans report calls
// issued. The instrumented executor collects the extras when the
// operator closes.
type SpanExtras interface {
	SpanExtras() map[string]int64
}

// Instrument wraps every operator of a plan in a timing decorator and
// returns the instrumented plan plus the root of its span tree. The
// span tree mirrors the plan tree exactly (span parentage == operator
// parentage), and each span accumulates the *inclusive* wall time spent
// inside its operator's Open/Next/Close calls: a parent's time includes
// its children's, so the root span's duration is the query's execution
// time and Span.Self exposes per-operator exclusive time.
//
// Because the decorators nest through the ordinary iterator protocol,
// time an operator spends blocked — a ReqSync waiting on the request
// pump, an EVScan inside a synchronous engine call — is attributed to
// that operator's self time. This is the Volcano-style per-operator
// profile the paper's latency-hiding claim is verified against.
//
// Instrument mutates the plan (children are replaced by their wrapped
// forms); plans are built per-query, so this is safe. It must run after
// any structural rewrites (async.Rewrite).
func Instrument(op Operator) (Operator, *obs.Span) {
	w := instrument(op)
	return w, w.span
}

func instrument(op Operator) *spanOp {
	span := obs.NewSpan(op.Name(), op.Describe())
	for i, c := range op.Children() {
		cw := instrument(c)
		span.AddChild(cw.span)
		op.SetChild(i, cw)
	}
	return &spanOp{inner: op, span: span}
}

// spanOp is the timing decorator. It is transparent to plan inspection:
// Name, Describe, Schema, and the child accessors all delegate, so
// Explain and Shape render the instrumented tree identically.
type spanOp struct {
	inner Operator
	span  *obs.Span
}

func (w *spanOp) Schema() *schema.Schema { return w.inner.Schema() }

func (w *spanOp) Open(ctx *Context) error {
	start := time.Now()
	if w.span.Opens == 0 {
		w.span.Start = start
	}
	w.span.Opens++
	err := w.inner.Open(ctx)
	w.span.Dur += time.Since(start)
	return err
}

func (w *spanOp) Next(ctx *Context) (t types.Tuple, ok bool, err error) {
	start := time.Now()
	t, ok, err = w.inner.Next(ctx)
	w.span.Dur += time.Since(start)
	if ok {
		w.span.Rows++
	}
	return t, ok, err
}

func (w *spanOp) Close() error {
	start := time.Now()
	err := w.inner.Close()
	w.span.Dur += time.Since(start)
	// Operator extras are cumulative over the operator's life, and Close
	// may run many times (a dependent join closes its inner subtree once
	// per outer binding, error paths close eagerly, Run closes again) —
	// so overwrite with the latest snapshot rather than accumulating.
	if ex, ok := w.inner.(SpanExtras); ok {
		for k, v := range ex.SpanExtras() {
			w.span.SetExtra(k, v)
		}
	}
	return err
}

func (w *spanOp) Children() []Operator        { return w.inner.Children() }
func (w *spanOp) SetChild(i int, op Operator) { w.inner.SetChild(i, op) }
func (w *spanOp) Name() string                { return w.inner.Name() }
func (w *spanOp) Describe() string            { return w.inner.Describe() }

// Unwrap exposes the decorated operator (tests reach through the
// instrumentation to assert on concrete operator state).
func (w *spanOp) Unwrap() Operator { return w.inner }
