package exec

import (
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/types"
)

// SortKey is one ORDER BY key.
type SortKey struct {
	Expr expr.Expr
	Desc bool
}

// Sort fully materializes its input at Open and emits it ordered. A sort
// always clashes with ReqSync when its keys are call-supplied attributes
// (it must observe final values), which is why the paper's Figure 3 plan
// has Sort above ReqSync.
type Sort struct {
	Child Operator
	Keys  []SortKey

	rows []types.Tuple
	pos  int
}

// NewSort builds a sort over child.
func NewSort(child Operator, keys []SortKey) *Sort {
	return &Sort{Child: child, Keys: keys}
}

// Schema implements Operator.
func (s *Sort) Schema() *schema.Schema { return s.Child.Schema() }

// Open implements Operator.
func (s *Sort) Open(ctx *Context) error {
	if err := s.Child.Open(ctx); err != nil {
		return err
	}
	exprs := make([]expr.Expr, len(s.Keys))
	for i, k := range s.Keys {
		exprs[i] = k.Expr
	}
	if err := bindAll("Sort", s.Child.Schema(), exprs...); err != nil {
		return err
	}
	s.rows = s.rows[:0]
	s.pos = 0

	type keyed struct {
		row  types.Tuple
		keys []types.Value
	}
	var buf []keyed
	for {
		b, ok, err := NextBatchFrom(ctx, s.Child, 0)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for _, t := range b {
			ks := make([]types.Value, len(s.Keys))
			for i, k := range s.Keys {
				v, err := k.Expr.Eval(ctx.Env, t)
				if err != nil {
					return fmt.Errorf("Sort key %s: %w", k.Expr, err)
				}
				ks[i] = v
			}
			buf = append(buf, keyed{row: t, keys: ks})
		}
	}
	sort.SliceStable(buf, func(i, j int) bool {
		for k := range s.Keys {
			c := buf[i].keys[k].Compare(buf[j].keys[k])
			if c == 0 {
				continue
			}
			if s.Keys[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for _, kv := range buf {
		s.rows = append(s.rows, kv.row)
	}
	return nil
}

// Next implements Operator.
func (s *Sort) Next(ctx *Context) (types.Tuple, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true, nil
}

// NextBatch implements BatchOperator by handing out windows of the sorted
// run materialized at Open.
func (s *Sort) NextBatch(ctx *Context, max int) (Batch, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	end := s.pos + max
	if end > len(s.rows) {
		end = len(s.rows)
	}
	b := Batch(s.rows[s.pos:end:end])
	s.pos = end
	return b, true, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.rows = nil
	return s.Child.Close()
}

// Children implements Operator.
func (s *Sort) Children() []Operator { return []Operator{s.Child} }

// SetChild implements Operator.
func (s *Sort) SetChild(i int, op Operator) {
	if i != 0 {
		panic("Sort has a single child")
	}
	s.Child = op
}

// Name implements Operator.
func (s *Sort) Name() string { return "Sort" }

// Describe implements Operator.
func (s *Sort) Describe() string {
	out := ""
	for i, k := range s.Keys {
		if i > 0 {
			out += ", "
		}
		out += k.Expr.String()
		if k.Desc {
			out += " DESC"
		}
	}
	return out
}

// KeyAttrs returns the attributes referenced by the sort keys.
func (s *Sort) KeyAttrs() map[schema.AttrID]bool {
	set := make(map[schema.AttrID]bool)
	for _, k := range s.Keys {
		k.Expr.CollectAttrs(set)
	}
	return set
}

// Limit emits at most N tuples. It is "existential" in the paper's clash
// taxonomy: the number of surviving tuples below it must be final, so a
// ReqSync can never be pulled above it.
type Limit struct {
	Child Operator
	N     int
	seen  int
}

// NewLimit builds a limit over child.
func NewLimit(child Operator, n int) *Limit { return &Limit{Child: child, N: n} }

// Schema implements Operator.
func (l *Limit) Schema() *schema.Schema { return l.Child.Schema() }

// Open implements Operator.
func (l *Limit) Open(ctx *Context) error {
	l.seen = 0
	return l.Child.Open(ctx)
}

// Next implements Operator.
func (l *Limit) Next(ctx *Context) (types.Tuple, bool, error) {
	if l.seen >= l.N {
		return nil, false, nil
	}
	t, ok, err := l.Child.Next(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return t, true, nil
}

// NextBatch implements BatchOperator. The pull from the child is capped
// at the remaining quota, not at max: a limit must never over-draw its
// child, because below an EVScan every extra tuple is an extra external
// call.
func (l *Limit) NextBatch(ctx *Context, max int) (Batch, bool, error) {
	rem := l.N - l.seen
	if rem <= 0 {
		return nil, false, nil
	}
	if max > rem {
		max = rem
	}
	b, ok, err := NextBatchFrom(ctx, l.Child, max)
	if err != nil || !ok {
		return nil, false, err
	}
	if len(b) > rem {
		b = b[:rem]
	}
	l.seen += len(b)
	return b, true, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Child.Close() }

// Children implements Operator.
func (l *Limit) Children() []Operator { return []Operator{l.Child} }

// SetChild implements Operator.
func (l *Limit) SetChild(i int, op Operator) {
	if i != 0 {
		panic("Limit has a single child")
	}
	l.Child = op
}

// Name implements Operator.
func (l *Limit) Name() string { return "Limit" }

// Describe implements Operator.
func (l *Limit) Describe() string { return fmt.Sprintf("%d", l.N) }

// Distinct eliminates duplicate tuples. Like aggregation, it requires an
// accurate tally of incoming tuples and therefore always clashes with
// ReqSync percolation (clash case 3 in Section 4.5.2).
type Distinct struct {
	Child Operator
	seen  map[string]bool
}

// NewDistinct builds a duplicate-eliminating operator.
func NewDistinct(child Operator) *Distinct { return &Distinct{Child: child} }

// Schema implements Operator.
func (d *Distinct) Schema() *schema.Schema { return d.Child.Schema() }

// Open implements Operator.
func (d *Distinct) Open(ctx *Context) error {
	d.seen = make(map[string]bool)
	return d.Child.Open(ctx)
}

// Next implements Operator.
func (d *Distinct) Next(ctx *Context) (types.Tuple, bool, error) {
	for {
		t, ok, err := d.Child.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		k := t.Key()
		if d.seen[k] {
			continue
		}
		d.seen[k] = true
		return t, true, nil
	}
}

// NextBatch implements BatchOperator: duplicate elimination over whole
// child batches, survivors in a fresh slice, looping until at least one
// new tuple appears or the child is exhausted.
func (d *Distinct) NextBatch(ctx *Context, max int) (Batch, bool, error) {
	for {
		in, ok, err := NextBatchFrom(ctx, d.Child, max)
		if err != nil || !ok {
			return nil, false, err
		}
		var out Batch
		for _, t := range in {
			k := t.Key()
			if d.seen[k] {
				continue
			}
			d.seen[k] = true
			out = append(out, t)
		}
		if len(out) > 0 {
			return out, true, nil
		}
	}
}

// Close implements Operator.
func (d *Distinct) Close() error {
	d.seen = nil
	return d.Child.Close()
}

// Children implements Operator.
func (d *Distinct) Children() []Operator { return []Operator{d.Child} }

// SetChild implements Operator.
func (d *Distinct) SetChild(i int, op Operator) {
	if i != 0 {
		panic("Distinct has a single child")
	}
	d.Child = op
}

// Name implements Operator.
func (d *Distinct) Name() string { return "Distinct" }

// Describe implements Operator.
func (d *Distinct) Describe() string { return "" }
