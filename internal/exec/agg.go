package exec

import (
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/types"
)

// AggFunc enumerates the supported aggregate functions.
type AggFunc uint8

// The aggregate functions.
const (
	AggCount AggFunc = iota
	AggCountStar
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String returns the SQL name of the function.
func (f AggFunc) String() string {
	switch f {
	case AggCount, AggCountStar:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return "AGG?"
	}
}

// AggSpec is one aggregate computation.
type AggSpec struct {
	Func AggFunc
	Arg  expr.Expr // nil for COUNT(*)
	// OutCol is the output column (fresh AttrID assigned by the planner).
	OutCol schema.Column
}

// Aggregate is a hash-based GROUP BY / aggregation operator. Its output
// schema is the group-by columns followed by one column per aggregate.
// Aggregation always clashes with ReqSync percolation: it "requires an
// accurate tally of incoming tuples" (Section 4.5.2, clash case 3).
type Aggregate struct {
	Child   Operator
	GroupBy []expr.Expr
	// GroupCols are the output columns for the group-by expressions.
	GroupCols []schema.Column
	Aggs      []AggSpec

	out  *schema.Schema
	rows []types.Tuple
	pos  int
}

// NewAggregate builds an aggregation operator.
func NewAggregate(child Operator, groupBy []expr.Expr, groupCols []schema.Column, aggs []AggSpec) *Aggregate {
	cols := append([]schema.Column{}, groupCols...)
	for _, a := range aggs {
		cols = append(cols, a.OutCol)
	}
	return &Aggregate{
		Child: child, GroupBy: groupBy, GroupCols: groupCols, Aggs: aggs,
		out: schema.New(cols...),
	}
}

// Schema implements Operator.
func (a *Aggregate) Schema() *schema.Schema { return a.out }

type aggState struct {
	groupVals []types.Value
	count     int64
	sum       float64
	sumIsInt  bool
	sumInt    int64
	min, max  types.Value
	seenAny   bool
}

// Open implements Operator: it drains the child and computes all groups.
func (a *Aggregate) Open(ctx *Context) error {
	exprs := append([]expr.Expr{}, a.GroupBy...)
	for _, sp := range a.Aggs {
		if sp.Arg != nil {
			exprs = append(exprs, sp.Arg)
		}
	}
	if err := a.Child.Open(ctx); err != nil {
		return err
	}
	if err := bindAll("Aggregate", a.Child.Schema(), exprs...); err != nil {
		return err
	}
	groups := make(map[string][]*aggState)
	var order []string
	var pending Batch
	nextRow := func() (types.Tuple, bool, error) {
		for len(pending) == 0 {
			b, ok, err := NextBatchFrom(ctx, a.Child, 0)
			if err != nil || !ok {
				return nil, false, err
			}
			pending = b
		}
		t := pending[0]
		pending = pending[1:]
		return t, true, nil
	}
	for {
		t, ok, err := nextRow()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if t.HasPlaceholder() {
			return fmt.Errorf("Aggregate received a pending placeholder tuple; plan rewrite must keep aggregation above ReqSync")
		}
		gvals := make([]types.Value, len(a.GroupBy))
		for i, g := range a.GroupBy {
			v, err := g.Eval(ctx.Env, t)
			if err != nil {
				return fmt.Errorf("Aggregate group key %s: %w", g, err)
			}
			gvals[i] = v
		}
		key := types.Tuple(gvals).Key()
		var sts []*aggState
		if existing, ok := groups[key]; ok {
			sts = existing
		} else {
			sts = make([]*aggState, len(a.Aggs))
			for i := range sts {
				sts[i] = &aggState{groupVals: gvals, sumIsInt: true}
			}
			if len(sts) == 0 {
				// Group with no aggregates still needs recording.
				sts = []*aggState{{groupVals: gvals}}
			}
			groups[key] = sts
			order = append(order, key)
		}
		for i, sp := range a.Aggs {
			st := sts[i]
			if sp.Func == AggCountStar {
				st.count++
				continue
			}
			v, err := sp.Arg.Eval(ctx.Env, t)
			if err != nil {
				return fmt.Errorf("Aggregate %s: %w", sp.Arg, err)
			}
			if v.IsNull() {
				continue
			}
			st.count++
			switch sp.Func {
			case AggSum, AggAvg:
				f, err := v.AsFloat()
				if err != nil {
					return err
				}
				st.sum += f
				if v.Kind == types.KindInt {
					st.sumInt += v.I
				} else {
					st.sumIsInt = false
				}
			case AggMin:
				if !st.seenAny || v.Compare(st.min) < 0 {
					st.min = v
				}
			case AggMax:
				if !st.seenAny || v.Compare(st.max) > 0 {
					st.max = v
				}
			}
			st.seenAny = true
		}
	}
	// Global aggregate over an empty input still emits one row.
	if len(order) == 0 && len(a.GroupBy) == 0 && len(a.Aggs) > 0 {
		sts := make([]*aggState, len(a.Aggs))
		for i := range sts {
			sts[i] = &aggState{sumIsInt: true}
		}
		groups[""] = sts
		order = append(order, "")
	}
	sort.Strings(order) // deterministic output order
	a.rows = a.rows[:0]
	a.pos = 0
	for _, key := range order {
		sts := groups[key]
		row := append(types.Tuple{}, sts[0].groupVals...)
		for i, sp := range a.Aggs {
			st := sts[i]
			switch sp.Func {
			case AggCount, AggCountStar:
				row = append(row, types.Int(st.count))
			case AggSum:
				if st.count == 0 {
					row = append(row, types.Null())
				} else if st.sumIsInt {
					row = append(row, types.Int(st.sumInt))
				} else {
					row = append(row, types.Float(st.sum))
				}
			case AggAvg:
				if st.count == 0 {
					row = append(row, types.Null())
				} else {
					row = append(row, types.Float(st.sum/float64(st.count)))
				}
			case AggMin:
				if !st.seenAny {
					row = append(row, types.Null())
				} else {
					row = append(row, st.min)
				}
			case AggMax:
				if !st.seenAny {
					row = append(row, types.Null())
				} else {
					row = append(row, st.max)
				}
			}
		}
		a.rows = append(a.rows, row)
	}
	return nil
}

// Next implements Operator.
func (a *Aggregate) Next(ctx *Context) (types.Tuple, bool, error) {
	if a.pos >= len(a.rows) {
		return nil, false, nil
	}
	t := a.rows[a.pos]
	a.pos++
	return t, true, nil
}

// NextBatch implements BatchOperator by handing out windows of the group
// rows materialized at Open.
func (a *Aggregate) NextBatch(ctx *Context, max int) (Batch, bool, error) {
	if a.pos >= len(a.rows) {
		return nil, false, nil
	}
	end := a.pos + max
	if end > len(a.rows) {
		end = len(a.rows)
	}
	b := Batch(a.rows[a.pos:end:end])
	a.pos = end
	return b, true, nil
}

// Close implements Operator.
func (a *Aggregate) Close() error {
	a.rows = nil
	return a.Child.Close()
}

// Children implements Operator.
func (a *Aggregate) Children() []Operator { return []Operator{a.Child} }

// SetChild implements Operator.
func (a *Aggregate) SetChild(i int, op Operator) {
	if i != 0 {
		panic("Aggregate has a single child")
	}
	a.Child = op
}

// Name implements Operator.
func (a *Aggregate) Name() string { return "Aggregate" }

// Describe implements Operator.
func (a *Aggregate) Describe() string {
	s := ""
	for i, g := range a.GroupBy {
		if i > 0 {
			s += ", "
		}
		s += g.String()
	}
	if len(a.Aggs) > 0 {
		if s != "" {
			s += "; "
		}
		for i, sp := range a.Aggs {
			if i > 0 {
				s += ", "
			}
			if sp.Func == AggCountStar {
				s += "COUNT(*)"
			} else {
				s += fmt.Sprintf("%s(%s)", sp.Func, sp.Arg)
			}
		}
	}
	return s
}
