package exec

import (
	"repro/internal/schema"
	"repro/internal/types"
)

// DefaultBatchSize is the executor's batch granularity when the query
// context does not override it. 256 tuples keeps a batch comfortably
// inside the L2 cache for the narrow reference tuples of the WSQ corpus
// while amortizing the per-call overhead of the iterator protocol by two
// orders of magnitude.
const DefaultBatchSize = 256

// Batch is a bounded run of tuples moved through the executor in one
// protocol call. A batch is owned by the operator that produced it and is
// valid only until the next NextBatch/Next call on that operator;
// consumers may read it and copy tuple references out of it, but must not
// mutate the slice (producers are free to hand out views of internal
// storage — a Sort emits windows of its materialized run, a ValuesScan
// windows of its row list).
type Batch []types.Tuple

// BatchOperator is implemented by operators that produce tuples natively
// in batches. Every BatchOperator is also a plain Operator — Open/Next/
// Close keep working unchanged, so the async rewriter's structural
// invariants and any legacy tuple-at-a-time consumer are unaffected; the
// two protocols share iteration state, so a consumer may even interleave
// them over one open operator.
type BatchOperator interface {
	Operator
	// NextBatch produces the next batch of at most max tuples (max <= 0
	// means the context's batch size). ok is false only at end of stream;
	// when ok is true the batch is non-empty. Partial batches may appear
	// anywhere in the stream, not just at the end.
	NextBatch(ctx *Context, max int) (Batch, bool, error)
}

// NextBatchFrom pulls up to max tuples from op: natively when op
// implements BatchOperator, otherwise through the tuple adapter that
// loops the classic Next protocol. This is the shim that lets batched
// consumers sit above legacy single-tuple operators (and vice versa)
// without any plan-tree wrapper node — the tree the async rewriter
// inspects and mutates is exactly the tree that executes.
func NextBatchFrom(ctx *Context, op Operator, max int) (Batch, bool, error) {
	if max <= 0 {
		max = ctx.batchSize()
	}
	if b, ok := op.(BatchOperator); ok {
		return b.NextBatch(ctx, max)
	}
	var out Batch
	for len(out) < max {
		t, ok, err := op.Next(ctx)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, false, nil
	}
	return out, true, nil
}

// BindingBatcher is implemented by dependent-join inner operators that
// can service a whole batch of outer bindings in one round — AEVScan uses
// it to register every external call of an outer batch with the request
// pump before the enclosing ReqSync's first wait, so the pump sees a deep
// request queue immediately instead of one call per Next.
type BindingBatcher interface {
	// BindBatch receives one correlated-binding frame per outer tuple and
	// returns, per frame, the rows the operator would have produced under
	// an Open/Next cycle with that frame pushed. ok reports whether the
	// operator supports batch binding at all — false (with nil error)
	// sends the caller down the ordinary per-tuple Open/Next path. An
	// empty frames slice is a capability probe: implementations must do no
	// work and just report ok (forwarding decorators whose inner operator
	// is not a BindingBatcher report false).
	BindBatch(ctx *Context, frames []map[schema.AttrID]types.Value) (rows [][]types.Tuple, ok bool, err error)
}
