package exec

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/types"
)

// HashJoin is the batch executor's equi-join: the right input is drained
// once at Open into a hash table keyed by the right-side key expressions,
// then the left input streams through as the probe side. The paper's
// engine deliberately had "only ... nested-loop join" (Section 5); with
// the relational side no longer the bottleneck-by-construction, the
// planner now picks this operator whenever the join predicate contains
// at least one cross-input equality conjunct.
//
// Output equivalence with NestedLoopJoin is exact, not just bag-equal:
// probing with the left input in stream order and emitting each key's
// build rows in right-scan order reproduces the nested-loop output order
// byte for byte, so Table-1 goldens and ORDER-BY-free result comparisons
// are unaffected by the operator swap.
//
// Key semantics mirror the expression evaluator's `=` (Cmp/EQ): NULL
// keys never match (NULL = x is NULL, not true), int and float compare
// numerically across kinds, and mismatched non-numeric kinds never
// match. Bucket keys normalize numerics to a single encoding so Int(1)
// and Float(1.0) land in the same bucket; every bucket candidate is then
// re-verified with Value.Compare, making the string encoding a pure
// bucketing hint that cannot produce false matches.
type HashJoin struct {
	Left, Right Operator
	// LeftKeys/RightKeys are the equi-key expressions, pairwise equal
	// length, bound against the respective input schema.
	LeftKeys, RightKeys []expr.Expr
	// Residual is the non-equi remainder of the join predicate (nil when
	// the predicate was entirely equi conjuncts), evaluated against the
	// concatenated tuple exactly as NestedLoopJoin evaluates its Pred.
	Residual expr.Expr

	out      *schema.Schema
	table    map[string][]buildRow
	buf      Batch
	leftDone bool
	opened   bool

	// Per-instance profile counters for the span trace: build/probe
	// self-time split and build-side cardinality, cumulative over Opens.
	buildNS, probeNS, buildRows int64
}

// buildRow is one hash-table entry: the right tuple plus its evaluated
// key values for collision verification.
type buildRow struct {
	row  types.Tuple
	keys []types.Value
}

// NewHashJoin builds an equi-hash-join. leftKeys[i] must pair with
// rightKeys[i]; residual may be nil.
func NewHashJoin(left, right Operator, leftKeys, rightKeys []expr.Expr, residual expr.Expr) *HashJoin {
	if len(leftKeys) == 0 || len(leftKeys) != len(rightKeys) {
		panic(fmt.Sprintf("HashJoin: key arity mismatch (%d left, %d right)", len(leftKeys), len(rightKeys)))
	}
	return &HashJoin{Left: left, Right: right, LeftKeys: leftKeys, RightKeys: rightKeys, Residual: residual}
}

// Schema implements Operator.
func (j *HashJoin) Schema() *schema.Schema {
	if j.out == nil {
		j.out = j.Left.Schema().Concat(j.Right.Schema())
	}
	return j.out
}

// Open implements Operator: it drains the right input and builds the
// hash table (re-opening rebuilds — correlated bindings may have changed
// what the right side produces).
func (j *HashJoin) Open(ctx *Context) error {
	j.out = nil // children may have been swapped by a rewrite
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	if err := j.Right.Open(ctx); err != nil {
		// Close is gated on opened, so the half-open left subtree must be
		// released here or it leaks.
		return errors.Join(err, j.Left.Close())
	}
	j.opened = true
	j.buf = nil
	j.leftDone = false
	if err := bindAll("Hash Join", j.Left.Schema(), j.LeftKeys...); err != nil {
		return err
	}
	if err := bindAll("Hash Join", j.Right.Schema(), j.RightKeys...); err != nil {
		return err
	}
	if err := bindAll("Hash Join", j.Schema(), j.Residual); err != nil {
		return err
	}
	start := time.Now()
	j.table = make(map[string][]buildRow)
	for {
		b, ok, err := NextBatchFrom(ctx, j.Right, 0)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for _, rt := range b {
			keys, null, err := evalKeys("Hash Join build", j.RightKeys, ctx, rt)
			if err != nil {
				return err
			}
			if null {
				continue // a NULL key can never equal anything
			}
			hk := hashKey(keys)
			j.table[hk] = append(j.table[hk], buildRow{row: rt, keys: keys})
			j.buildRows++
		}
	}
	j.buildNS += time.Since(start).Nanoseconds()
	return nil
}

// evalKeys evaluates key expressions against t. null reports that at
// least one key evaluated to NULL (the tuple cannot match anything).
func evalKeys(who string, keys []expr.Expr, ctx *Context, t types.Tuple) ([]types.Value, bool, error) {
	vals := make([]types.Value, len(keys))
	for i, k := range keys {
		v, err := k.Eval(ctx.Env, t)
		if err != nil {
			return nil, false, fmt.Errorf("%s key %s: %w", who, k, err)
		}
		if v.IsPlaceholder() {
			return nil, false, fmt.Errorf("%s key %s evaluated over pending placeholder value; plan rewrite must keep this operator above ReqSync", who, k)
		}
		if v.IsNull() {
			return nil, true, nil
		}
		vals[i] = v
	}
	return vals, false, nil
}

// hashKey encodes key values for bucketing. All numeric kinds share one
// encoding (Compare treats int and float numerically), so cross-kind
// numeric equalities bucket together; candidates are verified with
// Compare afterwards, so encoding collisions are harmless.
func hashKey(vals []types.Value) string {
	var b strings.Builder
	for i, v := range vals {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		switch v.Kind {
		case types.KindInt:
			b.WriteString("n:")
			b.WriteString(strconv.FormatFloat(float64(v.I), 'g', -1, 64))
		case types.KindFloat:
			b.WriteString("n:")
			b.WriteString(strconv.FormatFloat(v.F, 'g', -1, 64))
		case types.KindString:
			b.WriteString("s:")
			b.WriteString(v.S)
		default:
			b.WriteString("x:")
			b.WriteString(v.AsString())
		}
	}
	return b.String()
}

// keysEqual verifies a bucket candidate with the evaluator's comparison
// semantics.
func keysEqual(a, b []types.Value) bool {
	for i := range a {
		if a[i].Compare(b[i]) != 0 {
			return false
		}
	}
	return true
}

// fill probes left batches until at least one joined tuple is buffered
// or the left input is exhausted.
func (j *HashJoin) fill(ctx *Context, max int) error {
	start := time.Now()
	defer func() { j.probeNS += time.Since(start).Nanoseconds() }()
	for len(j.buf) == 0 && !j.leftDone {
		lb, ok, err := NextBatchFrom(ctx, j.Left, max)
		if err != nil {
			return err
		}
		if !ok {
			j.leftDone = true
			return nil
		}
		for _, lt := range lb {
			keys, null, err := evalKeys("Hash Join probe", j.LeftKeys, ctx, lt)
			if err != nil {
				return err
			}
			if null {
				continue
			}
			for _, cand := range j.table[hashKey(keys)] {
				if !keysEqual(keys, cand.keys) {
					continue
				}
				joined := lt.Concat(cand.row)
				if j.Residual != nil {
					v, err := j.Residual.Eval(ctx.Env, joined)
					if err != nil {
						return fmt.Errorf("Hash Join residual %s: %w", j.Residual, err)
					}
					if !v.Truthy() {
						continue
					}
				}
				j.buf = append(j.buf, joined)
			}
		}
	}
	return nil
}

// Next implements Operator.
func (j *HashJoin) Next(ctx *Context) (types.Tuple, bool, error) {
	if !j.opened {
		return nil, false, fmt.Errorf("HashJoin: Next before Open")
	}
	if len(j.buf) == 0 {
		if err := j.fill(ctx, ctx.batchSize()); err != nil {
			return nil, false, err
		}
		if len(j.buf) == 0 {
			return nil, false, nil
		}
	}
	t := j.buf[0]
	j.buf = j.buf[1:]
	return t, true, nil
}

// NextBatch implements BatchOperator.
func (j *HashJoin) NextBatch(ctx *Context, max int) (Batch, bool, error) {
	if !j.opened {
		return nil, false, fmt.Errorf("HashJoin: NextBatch before Open")
	}
	if len(j.buf) == 0 {
		if err := j.fill(ctx, max); err != nil {
			return nil, false, err
		}
		if len(j.buf) == 0 {
			return nil, false, nil
		}
	}
	n := len(j.buf)
	if n > max {
		n = max
	}
	b := j.buf[:n:n]
	j.buf = j.buf[n:]
	return b, true, nil
}

// Close implements Operator. Both subtrees are always closed and neither
// close error masks the other.
func (j *HashJoin) Close() error {
	if !j.opened {
		return nil
	}
	j.opened = false
	j.table = nil
	j.buf = nil
	return errors.Join(j.Left.Close(), j.Right.Close())
}

// Children implements Operator.
func (j *HashJoin) Children() []Operator { return []Operator{j.Left, j.Right} }

// SetChild implements Operator.
func (j *HashJoin) SetChild(i int, op Operator) {
	switch i {
	case 0:
		j.Left = op
	case 1:
		j.Right = op
	default:
		panic("HashJoin has two children")
	}
	j.out = nil
}

// SpanExtras implements the trace-profile hook: build-side cardinality
// and the build/probe self-time split, in microseconds.
func (j *HashJoin) SpanExtras() map[string]int64 {
	return map[string]int64{
		"build_rows": j.buildRows,
		"build_us":   j.buildNS / 1e3,
		"probe_us":   j.probeNS / 1e3,
	}
}

// Name implements Operator.
func (j *HashJoin) Name() string { return "Hash Join" }

// Describe implements Operator.
func (j *HashJoin) Describe() string {
	var b strings.Builder
	for i := range j.LeftKeys {
		if i > 0 {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(&b, "%s = %s", j.LeftKeys[i], j.RightKeys[i])
	}
	if j.Residual != nil {
		fmt.Fprintf(&b, " AND %s", j.Residual)
	}
	return b.String()
}

// FullPredicate reconstructs the join predicate as a single expression
// (key equalities ANDed with the residual). The async rewriter uses it
// when a percolating ReqSync clashes with the join: the hash join is
// rewritten as a Select over a cross-product, exactly the paper's
// join→σ(×) transformation, with this expression as the selection.
func (j *HashJoin) FullPredicate() expr.Expr {
	parts := make([]expr.Expr, 0, len(j.LeftKeys)+1)
	for i := range j.LeftKeys {
		parts = append(parts, expr.NewCmp(expr.EQ, j.LeftKeys[i], j.RightKeys[i]))
	}
	parts = append(parts, j.Residual)
	return expr.NewAnd(parts...)
}

// HashSemiJoin emits each left tuple whose key has at least one match in
// the right input — the planner's operator for EXISTS-shaped plans
// (e.g. DISTINCT over a pass-through projection of a join where no right
// column survives), where only existence matters and materializing the
// matches would be wasted work. Key and NULL semantics match HashJoin.
type HashSemiJoin struct {
	Left, Right         Operator
	LeftKeys, RightKeys []expr.Expr

	table    map[string][][]types.Value
	buf      Batch
	leftDone bool
	opened   bool

	buildNS, probeNS, buildRows int64
}

// NewHashSemiJoin builds a hash semi-join.
func NewHashSemiJoin(left, right Operator, leftKeys, rightKeys []expr.Expr) *HashSemiJoin {
	if len(leftKeys) == 0 || len(leftKeys) != len(rightKeys) {
		panic(fmt.Sprintf("HashSemiJoin: key arity mismatch (%d left, %d right)", len(leftKeys), len(rightKeys)))
	}
	return &HashSemiJoin{Left: left, Right: right, LeftKeys: leftKeys, RightKeys: rightKeys}
}

// Schema implements Operator: a semi-join passes the left input through.
func (j *HashSemiJoin) Schema() *schema.Schema { return j.Left.Schema() }

// Open implements Operator: it drains the right input into a key set.
func (j *HashSemiJoin) Open(ctx *Context) error {
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	if err := j.Right.Open(ctx); err != nil {
		// As in HashJoin.Open: release the half-open left subtree.
		return errors.Join(err, j.Left.Close())
	}
	j.opened = true
	j.buf = nil
	j.leftDone = false
	if err := bindAll("Hash Semi Join", j.Left.Schema(), j.LeftKeys...); err != nil {
		return err
	}
	if err := bindAll("Hash Semi Join", j.Right.Schema(), j.RightKeys...); err != nil {
		return err
	}
	start := time.Now()
	j.table = make(map[string][][]types.Value)
	for {
		b, ok, err := NextBatchFrom(ctx, j.Right, 0)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for _, rt := range b {
			keys, null, err := evalKeys("Hash Semi Join build", j.RightKeys, ctx, rt)
			if err != nil {
				return err
			}
			if null {
				continue
			}
			hk := hashKey(keys)
			j.table[hk] = append(j.table[hk], keys)
			j.buildRows++
		}
	}
	j.buildNS += time.Since(start).Nanoseconds()
	return nil
}

func (j *HashSemiJoin) fill(ctx *Context, max int) error {
	start := time.Now()
	defer func() { j.probeNS += time.Since(start).Nanoseconds() }()
	for len(j.buf) == 0 && !j.leftDone {
		lb, ok, err := NextBatchFrom(ctx, j.Left, max)
		if err != nil {
			return err
		}
		if !ok {
			j.leftDone = true
			return nil
		}
		for _, lt := range lb {
			keys, null, err := evalKeys("Hash Semi Join probe", j.LeftKeys, ctx, lt)
			if err != nil {
				return err
			}
			if null {
				continue
			}
			for _, cand := range j.table[hashKey(keys)] {
				if keysEqual(keys, cand) {
					j.buf = append(j.buf, lt)
					break
				}
			}
		}
	}
	return nil
}

// Next implements Operator.
func (j *HashSemiJoin) Next(ctx *Context) (types.Tuple, bool, error) {
	if !j.opened {
		return nil, false, fmt.Errorf("HashSemiJoin: Next before Open")
	}
	if len(j.buf) == 0 {
		if err := j.fill(ctx, ctx.batchSize()); err != nil {
			return nil, false, err
		}
		if len(j.buf) == 0 {
			return nil, false, nil
		}
	}
	t := j.buf[0]
	j.buf = j.buf[1:]
	return t, true, nil
}

// NextBatch implements BatchOperator.
func (j *HashSemiJoin) NextBatch(ctx *Context, max int) (Batch, bool, error) {
	if !j.opened {
		return nil, false, fmt.Errorf("HashSemiJoin: NextBatch before Open")
	}
	if len(j.buf) == 0 {
		if err := j.fill(ctx, max); err != nil {
			return nil, false, err
		}
		if len(j.buf) == 0 {
			return nil, false, nil
		}
	}
	n := len(j.buf)
	if n > max {
		n = max
	}
	b := j.buf[:n:n]
	j.buf = j.buf[n:]
	return b, true, nil
}

// Close implements Operator.
func (j *HashSemiJoin) Close() error {
	if !j.opened {
		return nil
	}
	j.opened = false
	j.table = nil
	j.buf = nil
	return errors.Join(j.Left.Close(), j.Right.Close())
}

// Children implements Operator.
func (j *HashSemiJoin) Children() []Operator { return []Operator{j.Left, j.Right} }

// SetChild implements Operator.
func (j *HashSemiJoin) SetChild(i int, op Operator) {
	switch i {
	case 0:
		j.Left = op
	case 1:
		j.Right = op
	default:
		panic("HashSemiJoin has two children")
	}
}

// SpanExtras implements the trace-profile hook.
func (j *HashSemiJoin) SpanExtras() map[string]int64 {
	return map[string]int64{
		"build_rows": j.buildRows,
		"build_us":   j.buildNS / 1e3,
		"probe_us":   j.probeNS / 1e3,
	}
}

// Name implements Operator.
func (j *HashSemiJoin) Name() string { return "Hash Semi Join" }

// Describe implements Operator.
func (j *HashSemiJoin) Describe() string {
	var b strings.Builder
	for i := range j.LeftKeys {
		if i > 0 {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(&b, "%s = %s", j.LeftKeys[i], j.RightKeys[i])
	}
	return b.String()
}
