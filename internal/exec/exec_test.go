package exec

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/types"
)

// ---------------------------------------------------------------------------
// Test fixtures

func intCol(table, name string) schema.Column {
	return schema.Column{ID: schema.NewAttrID(), Table: table, Name: name, Type: schema.TInt}
}

func strCol(table, name string) schema.Column {
	return schema.Column{ID: schema.NewAttrID(), Table: table, Name: name, Type: schema.TString}
}

func runAll(t *testing.T, op Operator) []types.Tuple {
	t.Helper()
	rows, err := Run(NewContext(), op)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// fakeSource is a scripted ExternalSource: it echoes its single input and
// returns a configured number of output rows per distinct argument.
type fakeSource struct {
	name    string
	rowsFor func(arg string) []types.Tuple
	mu      sync.Mutex
	calls   []string
}

func (f *fakeSource) Name() string        { return f.name }
func (f *fakeSource) Destination() string { return "fake" }
func (f *fakeSource) NumEcho() int        { return 1 }
func (f *fakeSource) CacheKey(args []types.Value) string {
	return f.name + "|" + args[0].AsString()
}
func (f *fakeSource) Call(args []types.Value) ([]types.Tuple, error) {
	f.mu.Lock()
	f.calls = append(f.calls, args[0].AsString())
	f.mu.Unlock()
	return f.rowsFor(args[0].AsString()), nil
}

func (f *fakeSource) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

// fakeSchema builds the EVScan output schema for fakeSource: input Term,
// output Val.
func fakeSchema(alias string) *schema.Schema {
	return schema.New(strCol(alias, "Term"), intCol(alias, "Val"))
}

// ---------------------------------------------------------------------------
// Scans

func TestValuesScan(t *testing.T) {
	s := schema.New(intCol("T", "A"))
	v := NewValuesScan(s, []types.Tuple{{types.Int(1)}, {types.Int(2)}})
	rows := runAll(t, v)
	if len(rows) != 2 || rows[1][0].I != 2 {
		t.Errorf("rows: %v", rows)
	}
	// Re-open rescans.
	rows = runAll(t, v)
	if len(rows) != 2 {
		t.Errorf("rescan rows: %v", rows)
	}
}

// ---------------------------------------------------------------------------
// Filter / Project

func TestFilter(t *testing.T) {
	a := intCol("T", "A")
	s := schema.New(a)
	scan := NewValuesScan(s, []types.Tuple{{types.Int(1)}, {types.Int(5)}, {types.Int(3)}})
	f := NewFilter(scan, expr.NewCmp(expr.GE, expr.NewColRef(a), expr.NewLiteral(types.Int(3))))
	rows := runAll(t, f)
	if len(rows) != 2 || rows[0][0].I != 5 || rows[1][0].I != 3 {
		t.Errorf("filter rows: %v", rows)
	}
}

func TestProjectComputedAndPassThrough(t *testing.T) {
	a, b := intCol("T", "A"), intCol("T", "B")
	s := schema.New(a, b)
	scan := NewValuesScan(s, []types.Tuple{{types.Int(10), types.Int(4)}})
	sum := schema.Column{ID: schema.NewAttrID(), Name: "S", Type: schema.TInt}
	p := NewProject(scan,
		[]expr.Expr{expr.NewColRef(b), expr.NewArith(expr.Add, expr.NewColRef(a), expr.NewColRef(b))},
		schema.New(b, sum))
	rows := runAll(t, p)
	if len(rows) != 1 || rows[0][0].I != 4 || rows[0][1].I != 14 {
		t.Errorf("project rows: %v", rows)
	}
	if p.PassThroughExprs() {
		t.Error("computed projection is not pass-through")
	}
	p2 := NewProject(scan, []expr.Expr{expr.NewColRef(a)}, schema.New(a))
	if !p2.PassThroughExprs() {
		t.Error("plain colref projection is pass-through")
	}
}

// ---------------------------------------------------------------------------
// Joins

func TestNestedLoopJoin(t *testing.T) {
	a := intCol("L", "A")
	b := intCol("R", "B")
	left := NewValuesScan(schema.New(a), []types.Tuple{{types.Int(1)}, {types.Int(2)}})
	right := NewValuesScan(schema.New(b), []types.Tuple{{types.Int(2)}, {types.Int(3)}})
	j := NewNestedLoopJoin(left, right, expr.NewCmp(expr.EQ, expr.NewColRef(a), expr.NewColRef(b)))
	rows := runAll(t, j)
	if len(rows) != 1 || rows[0][0].I != 2 || rows[0][1].I != 2 {
		t.Errorf("join rows: %v", rows)
	}
	if j.Name() != "Join" {
		t.Error("predicated join name")
	}
}

func TestCrossProduct(t *testing.T) {
	a := intCol("L", "A")
	b := intCol("R", "B")
	left := NewValuesScan(schema.New(a), []types.Tuple{{types.Int(1)}, {types.Int(2)}})
	right := NewValuesScan(schema.New(b), []types.Tuple{{types.Int(10)}, {types.Int(20)}, {types.Int(30)}})
	j := NewNestedLoopJoin(left, right, nil)
	rows := runAll(t, j)
	if len(rows) != 6 {
		t.Errorf("cross product rows: %d", len(rows))
	}
	if j.Name() != "Cross-Product" {
		t.Error("cross product name")
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	a := intCol("L", "A")
	b := intCol("R", "B")
	empty := NewValuesScan(schema.New(a), nil)
	right := NewValuesScan(schema.New(b), []types.Tuple{{types.Int(1)}})
	if rows := runAll(t, NewNestedLoopJoin(empty, right, nil)); len(rows) != 0 {
		t.Errorf("empty left: %v", rows)
	}
	left := NewValuesScan(schema.New(a), []types.Tuple{{types.Int(1)}})
	emptyR := NewValuesScan(schema.New(b), nil)
	if rows := runAll(t, NewNestedLoopJoin(left, emptyR, nil)); len(rows) != 0 {
		t.Errorf("empty right: %v", rows)
	}
}

func TestDependentJoinBindings(t *testing.T) {
	term := strCol("L", "Term")
	left := NewValuesScan(schema.New(term), []types.Tuple{{types.Str("a")}, {types.Str("b")}})
	src := &fakeSource{name: "F", rowsFor: func(arg string) []types.Tuple {
		return []types.Tuple{{types.Int(int64(len(arg)) * 10)}}
	}}
	out := fakeSchema("F")
	ev := NewEVScan(src, []expr.Expr{expr.NewColRef(term)}, out)
	dj := NewDependentJoin(left, ev, "L.Term -> F.Term")
	rows := runAll(t, dj)
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	// Each output row: [L.Term, F.Term(echo), F.Val].
	for _, r := range rows {
		if r[0].AsString() != r[1].AsString() {
			t.Errorf("echoed input mismatch: %v", r)
		}
		if r[2].I != 10 {
			t.Errorf("val: %v", r)
		}
	}
	if src.callCount() != 2 {
		t.Errorf("calls: %d", src.callCount())
	}
}

func TestDependentJoinMultiRowAndEmpty(t *testing.T) {
	term := strCol("L", "Term")
	left := NewValuesScan(schema.New(term), []types.Tuple{{types.Str("none")}, {types.Str("three")}})
	src := &fakeSource{name: "F", rowsFor: func(arg string) []types.Tuple {
		if arg == "none" {
			return nil
		}
		return []types.Tuple{{types.Int(1)}, {types.Int(2)}, {types.Int(3)}}
	}}
	ev := NewEVScan(src, []expr.Expr{expr.NewColRef(term)}, fakeSchema("F"))
	rows := runAll(t, NewDependentJoin(left, ev, ""))
	if len(rows) != 3 {
		t.Fatalf("rows: %v", rows)
	}
	for i, r := range rows {
		if r[0].AsString() != "three" || r[2].I != int64(i+1) {
			t.Errorf("row %d: %v", i, r)
		}
	}
}

func TestStackedDependentJoins(t *testing.T) {
	// Two stacked dependent joins: the upper one re-binds per tuple of the
	// lower join's output (the Figure 5/6 plan shape).
	term := strCol("L", "Term")
	left := NewValuesScan(schema.New(term), []types.Tuple{{types.Str("x")}, {types.Str("yy")}})
	src1 := &fakeSource{name: "F1", rowsFor: func(arg string) []types.Tuple {
		return []types.Tuple{{types.Int(int64(len(arg)))}}
	}}
	src2 := &fakeSource{name: "F2", rowsFor: func(arg string) []types.Tuple {
		return []types.Tuple{{types.Int(int64(len(arg)) * 100)}}
	}}
	ev1 := NewEVScan(src1, []expr.Expr{expr.NewColRef(term)}, fakeSchema("F1"))
	dj1 := NewDependentJoin(left, ev1, "")
	ev2 := NewEVScan(src2, []expr.Expr{expr.NewColRef(term)}, fakeSchema("F2"))
	dj2 := NewDependentJoin(dj1, ev2, "")
	rows := runAll(t, dj2)
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	for _, r := range rows {
		// Row: [L.Term, F1.Term, F1.Val, F2.Term, F2.Val].
		n := int64(len(r[0].AsString()))
		if r[2].I != n || r[4].I != n*100 {
			t.Errorf("row: %v", r)
		}
	}
}

// ---------------------------------------------------------------------------
// Sort / Limit / Distinct / Aggregate

func TestSort(t *testing.T) {
	a, b := intCol("T", "A"), strCol("T", "B")
	s := schema.New(a, b)
	scan := NewValuesScan(s, []types.Tuple{
		{types.Int(2), types.Str("x")},
		{types.Int(1), types.Str("y")},
		{types.Int(2), types.Str("a")},
	})
	srt := NewSort(scan, []SortKey{
		{Expr: expr.NewColRef(a), Desc: true},
		{Expr: expr.NewColRef(b)},
	})
	rows := runAll(t, srt)
	want := []string{"a", "x", "y"}
	for i, r := range rows {
		if r[1].AsString() != want[i] {
			t.Errorf("sort order: %v", rows)
			break
		}
	}
}

func TestSortStability(t *testing.T) {
	a, b := intCol("T", "A"), intCol("T", "B")
	s := schema.New(a, b)
	var input []types.Tuple
	for i := 0; i < 10; i++ {
		input = append(input, types.Tuple{types.Int(1), types.Int(int64(i))})
	}
	srt := NewSort(NewValuesScan(s, input), []SortKey{{Expr: expr.NewColRef(a)}})
	rows := runAll(t, srt)
	for i, r := range rows {
		if r[1].I != int64(i) {
			t.Fatal("sort must be stable on equal keys")
		}
	}
}

func TestLimit(t *testing.T) {
	a := intCol("T", "A")
	scan := NewValuesScan(schema.New(a), []types.Tuple{{types.Int(1)}, {types.Int(2)}, {types.Int(3)}})
	rows := runAll(t, NewLimit(scan, 2))
	if len(rows) != 2 {
		t.Errorf("limit rows: %v", rows)
	}
	rows = runAll(t, NewLimit(scan, 0))
	if len(rows) != 0 {
		t.Errorf("limit 0: %v", rows)
	}
	rows = runAll(t, NewLimit(scan, 10))
	if len(rows) != 3 {
		t.Errorf("limit beyond input: %v", rows)
	}
}

func TestDistinct(t *testing.T) {
	a := intCol("T", "A")
	scan := NewValuesScan(schema.New(a), []types.Tuple{
		{types.Int(1)}, {types.Int(2)}, {types.Int(1)}, {types.Int(1)},
	})
	rows := runAll(t, NewDistinct(scan))
	if len(rows) != 2 {
		t.Errorf("distinct rows: %v", rows)
	}
}

func TestAggregate(t *testing.T) {
	g, v := strCol("T", "G"), intCol("T", "V")
	s := schema.New(g, v)
	scan := NewValuesScan(s, []types.Tuple{
		{types.Str("a"), types.Int(1)},
		{types.Str("b"), types.Int(10)},
		{types.Str("a"), types.Int(3)},
		{types.Str("b"), types.Null()}, // NULL ignored by aggregates
	})
	agg := NewAggregate(scan,
		[]expr.Expr{expr.NewColRef(g)},
		[]schema.Column{g},
		[]AggSpec{
			{Func: AggCountStar, OutCol: intCol("", "n")},
			{Func: AggSum, Arg: expr.NewColRef(v), OutCol: intCol("", "s")},
			{Func: AggMin, Arg: expr.NewColRef(v), OutCol: intCol("", "mn")},
			{Func: AggMax, Arg: expr.NewColRef(v), OutCol: intCol("", "mx")},
			{Func: AggAvg, Arg: expr.NewColRef(v), OutCol: schema.Column{ID: schema.NewAttrID(), Name: "av", Type: schema.TFloat}},
		})
	rows := runAll(t, agg)
	if len(rows) != 2 {
		t.Fatalf("groups: %v", rows)
	}
	// Deterministic order (sorted by group key): a then b.
	ra, rb := rows[0], rows[1]
	if ra[0].AsString() != "a" || ra[1].I != 2 || ra[2].I != 4 || ra[3].I != 1 || ra[4].I != 3 || ra[5].F != 2 {
		t.Errorf("group a: %v", ra)
	}
	if rb[0].AsString() != "b" || rb[1].I != 2 || rb[2].I != 10 {
		t.Errorf("group b: %v", rb)
	}
}

func TestAggregateGlobalEmptyInput(t *testing.T) {
	v := intCol("T", "V")
	scan := NewValuesScan(schema.New(v), nil)
	agg := NewAggregate(scan, nil, nil, []AggSpec{
		{Func: AggCountStar, OutCol: intCol("", "n")},
		{Func: AggSum, Arg: expr.NewColRef(v), OutCol: intCol("", "s")},
	})
	rows := runAll(t, agg)
	if len(rows) != 1 || rows[0][0].I != 0 || !rows[0][1].IsNull() {
		t.Errorf("global aggregate over empty input: %v", rows)
	}
}

func TestAggregateRejectsPlaceholders(t *testing.T) {
	v := intCol("T", "V")
	scan := NewValuesScan(schema.New(v), []types.Tuple{{types.Placeholder(1, 0)}})
	agg := NewAggregate(scan, nil, nil, []AggSpec{{Func: AggCountStar, OutCol: intCol("", "n")}})
	if _, err := Run(NewContext(), agg); err == nil {
		t.Fatal("aggregate over placeholder tuples must error")
	}
}

// ---------------------------------------------------------------------------
// EVScan

func TestEVScanConstantInput(t *testing.T) {
	src := &fakeSource{name: "F", rowsFor: func(arg string) []types.Tuple {
		return []types.Tuple{{types.Int(7)}}
	}}
	ev := NewEVScan(src, []expr.Expr{expr.NewLiteral(types.Str("q"))}, fakeSchema("F"))
	rows := runAll(t, ev)
	if len(rows) != 1 || rows[0][0].AsString() != "q" || rows[0][1].I != 7 {
		t.Errorf("evscan rows: %v", rows)
	}
}

func TestEVScanCache(t *testing.T) {
	src := &fakeSource{name: "F", rowsFor: func(arg string) []types.Tuple {
		return []types.Tuple{{types.Int(1)}}
	}}
	cache := &mapCache{m: make(map[string][]types.Tuple)}
	ev := NewEVScan(src, []expr.Expr{expr.NewLiteral(types.Str("q"))}, fakeSchema("F"))
	ev.Cache = cache
	ctx := NewContext()
	for i := 0; i < 3; i++ {
		if _, err := Run(ctx, ev); err != nil {
			t.Fatal(err)
		}
	}
	if src.callCount() != 1 {
		t.Errorf("cache should dedupe calls: %d", src.callCount())
	}
	if ctx.Stats.ExternalCalls != 1 {
		t.Errorf("stats should count only real calls: %d", ctx.Stats.ExternalCalls)
	}
}

type mapCache struct {
	mu sync.Mutex
	m  map[string][]types.Tuple
}

func (c *mapCache) Get(k string) ([]types.Tuple, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[k]
	return r, ok
}
func (c *mapCache) Put(k string, rows []types.Tuple) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = rows
}

func TestEVScanPlaceholderInputRejected(t *testing.T) {
	term := strCol("L", "Term")
	src := &fakeSource{name: "F", rowsFor: func(string) []types.Tuple { return nil }}
	ev := NewEVScan(src, []expr.Expr{expr.NewColRef(term)}, fakeSchema("F"))
	ctx := NewContext()
	ctx.Env.PushFrame(map[schema.AttrID]types.Value{term.ID: types.Placeholder(5, 0)})
	if err := ev.Open(ctx); err == nil {
		t.Fatal("placeholder input must be rejected")
	}
}

// ---------------------------------------------------------------------------
// Explain / Shape

func TestExplainAndShape(t *testing.T) {
	a := intCol("T", "A")
	scan := NewValuesScan(schema.New(a), nil)
	plan := NewSort(NewFilter(scan, expr.NewCmp(expr.GT, expr.NewColRef(a), expr.NewLiteral(types.Int(0)))),
		[]SortKey{{Expr: expr.NewColRef(a), Desc: true}})
	exp := Explain(plan)
	for _, want := range []string{"Sort: T.A DESC", "Select: T.A > 0", "Values"} {
		if !strings.Contains(exp, want) {
			t.Errorf("explain %q missing %q", exp, want)
		}
	}
	if got := Shape(plan); got != "Sort(Select(Values))" {
		t.Errorf("shape: %s", got)
	}
}

// ---------------------------------------------------------------------------
// Children / SetChild rewire

func TestSetChildRewiresSchema(t *testing.T) {
	a := intCol("L", "A")
	b := intCol("R", "B")
	c := intCol("R2", "C")
	left := NewValuesScan(schema.New(a), []types.Tuple{{types.Int(1)}})
	right := NewValuesScan(schema.New(b), []types.Tuple{{types.Int(2)}})
	j := NewNestedLoopJoin(left, right, nil)
	_ = j.Schema() // cache it
	j.SetChild(1, NewValuesScan(schema.New(c), []types.Tuple{{types.Int(3)}}))
	if j.Schema().Cols[1].Name != "C" {
		t.Error("SetChild must invalidate the cached schema")
	}
	rows := runAll(t, j)
	if len(rows) != 1 || rows[0][1].I != 3 {
		t.Errorf("rows after rewire: %v", rows)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	a := intCol("T", "A")
	scan := NewValuesScan(schema.New(a), []types.Tuple{{types.Str("boom")}})
	// Filter comparing string to int is fine (kind-ordered), but an unbound
	// column reference must error at bind time.
	ghost := intCol("Ghost", "X")
	f := NewFilter(scan, expr.NewCmp(expr.EQ, expr.NewColRef(ghost), expr.NewLiteral(types.Int(1))))
	if _, err := Run(NewContext(), f); err == nil {
		t.Fatal("expected error for unresolvable column at eval time")
	}
	_ = fmt.Sprintf
}
