package exec

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/types"
)

// TableScan is a full scan over a stored table. The scan's output schema is
// the per-query instantiation of the table's columns (fresh AttrIDs per
// occurrence in the FROM clause).
type TableScan struct {
	Table *catalog.Table
	Out   *schema.Schema

	sc *storage.Scanner
}

// NewTableScan builds a scan over t producing the given instantiated schema.
func NewTableScan(t *catalog.Table, out *schema.Schema) *TableScan {
	return &TableScan{Table: t, Out: out}
}

// Schema implements Operator.
func (s *TableScan) Schema() *schema.Schema { return s.Out }

// Open implements Operator; re-opening restarts the scan (dependent joins
// and nested-loop joins re-open their inner input).
func (s *TableScan) Open(ctx *Context) error {
	if s.sc != nil {
		if err := s.sc.Close(); err != nil {
			return err
		}
	}
	s.sc = s.Table.Heap.NewScanner()
	return nil
}

// Next implements Operator.
func (s *TableScan) Next(ctx *Context) (types.Tuple, bool, error) {
	if s.sc == nil {
		return nil, false, fmt.Errorf("TableScan(%s): Next before Open", s.Table.Def.Name)
	}
	_, raw, ok, err := s.sc.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	t, err := types.DecodeTuple(raw)
	if err != nil {
		return nil, false, fmt.Errorf("TableScan(%s): %w", s.Table.Def.Name, err)
	}
	if len(t) != s.Out.Len() {
		return nil, false, fmt.Errorf("TableScan(%s): stored tuple width %d != schema width %d",
			s.Table.Def.Name, len(t), s.Out.Len())
	}
	return t, true, nil
}

// NextBatch implements BatchOperator: one storage-scanner loop per batch
// instead of one protocol call per stored tuple.
func (s *TableScan) NextBatch(ctx *Context, max int) (Batch, bool, error) {
	if s.sc == nil {
		return nil, false, fmt.Errorf("TableScan(%s): NextBatch before Open", s.Table.Def.Name)
	}
	var out Batch
	for len(out) < max {
		_, raw, ok, err := s.sc.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		t, err := types.DecodeTuple(raw)
		if err != nil {
			return nil, false, fmt.Errorf("TableScan(%s): %w", s.Table.Def.Name, err)
		}
		if len(t) != s.Out.Len() {
			return nil, false, fmt.Errorf("TableScan(%s): stored tuple width %d != schema width %d",
				s.Table.Def.Name, len(t), s.Out.Len())
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, false, nil
	}
	return out, true, nil
}

// Close implements Operator.
func (s *TableScan) Close() error {
	if s.sc == nil {
		return nil
	}
	err := s.sc.Close()
	s.sc = nil
	return err
}

// Children implements Operator.
func (s *TableScan) Children() []Operator { return nil }

// SetChild implements Operator.
func (s *TableScan) SetChild(int, Operator) {
	panic("TableScan has no children")
}

// Name implements Operator.
func (s *TableScan) Name() string { return "Scan" }

// Describe implements Operator.
func (s *TableScan) Describe() string {
	alias := ""
	if len(s.Out.Cols) > 0 && s.Out.Cols[0].Table != s.Table.Def.Name {
		alias = " " + s.Out.Cols[0].Table
	}
	return s.Table.Def.Name + alias
}

// ValuesScan replays an in-memory tuple list; it backs tests and internal
// tools that need a leaf without storage.
type ValuesScan struct {
	Out  *schema.Schema
	Rows []types.Tuple
	pos  int
}

// NewValuesScan builds an in-memory scan.
func NewValuesScan(out *schema.Schema, rows []types.Tuple) *ValuesScan {
	return &ValuesScan{Out: out, Rows: rows}
}

// Schema implements Operator.
func (v *ValuesScan) Schema() *schema.Schema { return v.Out }

// Open implements Operator.
func (v *ValuesScan) Open(ctx *Context) error { v.pos = 0; return nil }

// Next implements Operator.
func (v *ValuesScan) Next(ctx *Context) (types.Tuple, bool, error) {
	if v.pos >= len(v.Rows) {
		return nil, false, nil
	}
	t := v.Rows[v.pos]
	v.pos++
	return t, true, nil
}

// NextBatch implements BatchOperator by handing out windows of the row
// list; callers must not mutate the returned slice (see Batch).
func (v *ValuesScan) NextBatch(ctx *Context, max int) (Batch, bool, error) {
	if v.pos >= len(v.Rows) {
		return nil, false, nil
	}
	end := v.pos + max
	if end > len(v.Rows) {
		end = len(v.Rows)
	}
	b := Batch(v.Rows[v.pos:end:end])
	v.pos = end
	return b, true, nil
}

// Close implements Operator.
func (v *ValuesScan) Close() error { return nil }

// Children implements Operator.
func (v *ValuesScan) Children() []Operator { return nil }

// SetChild implements Operator.
func (v *ValuesScan) SetChild(int, Operator) { panic("ValuesScan has no children") }

// Name implements Operator.
func (v *ValuesScan) Name() string { return "Values" }

// Describe implements Operator.
func (v *ValuesScan) Describe() string { return fmt.Sprintf("%d rows", len(v.Rows)) }
