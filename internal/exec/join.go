package exec

import (
	"errors"
	"fmt"

	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/types"
)

// NestedLoopJoin is the engine's only join algorithm, as in Redbase ("the
// only available join technique is nested-loop join", Section 5). With a
// nil predicate it degenerates to a cross-product, which is how the async
// rewriter's join→σ(×) transformation represents rewritten joins.
type NestedLoopJoin struct {
	Left, Right Operator
	Pred        expr.Expr // nil for a pure cross-product

	out      *schema.Schema
	curLeft  types.Tuple
	leftDone bool
	opened   bool
}

// NewNestedLoopJoin builds a theta-join (or cross-product when pred is nil).
func NewNestedLoopJoin(left, right Operator, pred expr.Expr) *NestedLoopJoin {
	return &NestedLoopJoin{Left: left, Right: right, Pred: pred}
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() *schema.Schema {
	if j.out == nil {
		j.out = j.Left.Schema().Concat(j.Right.Schema())
	}
	return j.out
}

// Open implements Operator.
func (j *NestedLoopJoin) Open(ctx *Context) error {
	j.out = nil // children may have been swapped by a rewrite
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	j.curLeft = nil
	j.leftDone = false
	j.opened = true
	return bindAll("Join", j.Schema(), j.Pred)
}

// Next implements Operator.
func (j *NestedLoopJoin) Next(ctx *Context) (types.Tuple, bool, error) {
	if !j.opened {
		return nil, false, fmt.Errorf("NestedLoopJoin: Next before Open")
	}
	for {
		if j.curLeft == nil {
			if j.leftDone {
				return nil, false, nil
			}
			lt, ok, err := j.Left.Next(ctx)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.leftDone = true
				return nil, false, nil
			}
			j.curLeft = lt
			if err := j.Right.Open(ctx); err != nil {
				return nil, false, err
			}
		}
		rt, ok, err := j.Right.Next(ctx)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if err := j.Right.Close(); err != nil {
				return nil, false, err
			}
			j.curLeft = nil
			continue
		}
		joined := j.curLeft.Concat(rt)
		if j.Pred != nil {
			v, err := j.Pred.Eval(ctx.Env, joined)
			if err != nil {
				return nil, false, fmt.Errorf("Join %s: %w", j.Pred, err)
			}
			if !v.Truthy() {
				continue
			}
		}
		return joined, true, nil
	}
}

// Close implements Operator. Both subtrees are always closed (the right
// may be mid-iteration when an error unwinds through us) and neither
// close error masks the other.
func (j *NestedLoopJoin) Close() error {
	if !j.opened {
		return nil
	}
	j.opened = false
	j.curLeft = nil
	return errors.Join(j.Left.Close(), j.Right.Close())
}

// Children implements Operator.
func (j *NestedLoopJoin) Children() []Operator { return []Operator{j.Left, j.Right} }

// SetChild implements Operator.
func (j *NestedLoopJoin) SetChild(i int, op Operator) {
	switch i {
	case 0:
		j.Left = op
	case 1:
		j.Right = op
	default:
		panic("NestedLoopJoin has two children")
	}
	j.out = nil
}

// Name implements Operator.
func (j *NestedLoopJoin) Name() string {
	if j.Pred == nil {
		return "Cross-Product"
	}
	return "Join"
}

// Describe implements Operator.
func (j *NestedLoopJoin) Describe() string {
	if j.Pred == nil {
		return ""
	}
	return j.Pred.String()
}

// DependentJoin supplies each outer tuple's column values as correlated
// bindings to its right subtree, then re-opens it — the binding-passing
// join the paper requires for virtual tables ("the Dependent Join operator
// requires each GetNext call to its right child to include a binding from
// its left child", Section 4.1).
type DependentJoin struct {
	Left, Right Operator
	// BindDesc documents the binding for EXPLAIN output, e.g.
	// "Sigs.Name -> WebCount.T1"; it has no execution role.
	BindDesc string

	out      *schema.Schema
	curLeft  types.Tuple
	leftDone bool
	framed   bool
	opened   bool
	ctx      *Context
}

// NewDependentJoin builds a dependent join.
func NewDependentJoin(left, right Operator, bindDesc string) *DependentJoin {
	return &DependentJoin{Left: left, Right: right, BindDesc: bindDesc}
}

// Schema implements Operator.
func (j *DependentJoin) Schema() *schema.Schema {
	if j.out == nil {
		j.out = j.Left.Schema().Concat(j.Right.Schema())
	}
	return j.out
}

// Open implements Operator.
func (j *DependentJoin) Open(ctx *Context) error {
	j.out = nil
	j.popFrame(ctx) // balance a frame left pushed by an interrupted run
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	j.curLeft = nil
	j.leftDone = false
	j.opened = true
	j.ctx = ctx
	return nil
}

// popFrame releases the current outer-binding frame if one is pushed.
func (j *DependentJoin) popFrame(ctx *Context) {
	if j.framed {
		ctx.Env.PopFrame()
		j.framed = false
	}
}

// Next implements Operator.
func (j *DependentJoin) Next(ctx *Context) (types.Tuple, bool, error) {
	if !j.opened {
		return nil, false, fmt.Errorf("DependentJoin: Next before Open")
	}
	for {
		if j.curLeft == nil {
			if j.leftDone {
				return nil, false, nil
			}
			lt, ok, err := j.Left.Next(ctx)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.leftDone = true
				return nil, false, nil
			}
			j.curLeft = lt
			// Make the outer tuple's values visible as correlated bindings,
			// then (re-)open the right subtree so it can evaluate its
			// parameter expressions against them.
			frame := make(map[schema.AttrID]types.Value, j.Left.Schema().Len())
			for i, col := range j.Left.Schema().Cols {
				if i < len(lt) {
					frame[col.ID] = lt[i]
				}
			}
			ctx.Env.PushFrame(frame)
			j.framed = true
			if err := j.Right.Open(ctx); err != nil {
				j.popFrame(ctx)
				return nil, false, err
			}
		}
		rt, ok, err := j.Right.Next(ctx)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if err := j.Right.Close(); err != nil {
				return nil, false, err
			}
			j.popFrame(ctx)
			j.curLeft = nil
			continue
		}
		return j.curLeft.Concat(rt), true, nil
	}
}

// NextBatch implements BatchOperator. When the right subtree can service
// a whole batch of correlated bindings at once (BindingBatcher — the
// AEVScan batch-registration path), a full outer batch is pulled and
// bound in one round, so every external call of the batch reaches the
// request pump before the enclosing ReqSync first waits. Otherwise the
// per-tuple protocol is looped, capped at max so nothing below is
// over-drawn.
func (j *DependentJoin) NextBatch(ctx *Context, max int) (Batch, bool, error) {
	if !j.opened {
		return nil, false, fmt.Errorf("DependentJoin: NextBatch before Open")
	}
	// The fast path requires a clean state: if a previous per-tuple Next
	// left the right subtree mid-iteration, finish that outer tuple via the
	// fallback below.
	if j.curLeft == nil {
		if bb, ok := j.Right.(BindingBatcher); ok {
			_, supports, err := bb.BindBatch(ctx, nil) // side-effect-free capability probe
			if err != nil {
				return nil, false, err
			}
			if supports {
				return j.nextBatchBound(ctx, bb, max)
			}
		}
	}
	var out Batch
	for len(out) < max {
		t, ok, err := j.Next(ctx)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, false, nil
	}
	return out, true, nil
}

// nextBatchBound services outer batches through the right subtree's
// BindBatch, preserving the per-tuple output order (all of outer tuple
// i's rows before any of outer tuple i+1's).
func (j *DependentJoin) nextBatchBound(ctx *Context, bb BindingBatcher, max int) (Batch, bool, error) {
	for {
		if j.leftDone {
			return nil, false, nil
		}
		lb, ok, err := NextBatchFrom(ctx, j.Left, max)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			j.leftDone = true
			return nil, false, nil
		}
		frames := make([]map[schema.AttrID]types.Value, len(lb))
		for fi, lt := range lb {
			frame := make(map[schema.AttrID]types.Value, j.Left.Schema().Len())
			for i, col := range j.Left.Schema().Cols {
				if i < len(lt) {
					frame[col.ID] = lt[i]
				}
			}
			frames[fi] = frame
		}
		rows, handled, err := bb.BindBatch(ctx, frames)
		if err != nil {
			return nil, false, err
		}
		if !handled {
			return nil, false, fmt.Errorf("DependentJoin: right child revoked batch binding mid-stream")
		}
		var out Batch
		for fi, rs := range rows {
			for _, rt := range rs {
				out = append(out, lb[fi].Concat(rt))
			}
		}
		if len(out) > 0 {
			return out, true, nil
		}
		// Every binding of this outer batch produced zero rows; pull the
		// next outer batch.
	}
}

// Close implements Operator. Both subtrees are always closed (the right
// may be mid-iteration when an error unwinds through us) and neither
// close error masks the other.
func (j *DependentJoin) Close() error {
	if !j.opened {
		return nil
	}
	j.opened = false
	j.popFrame(j.ctx) // balance the frame when closed mid-iteration
	j.curLeft = nil
	return errors.Join(j.Left.Close(), j.Right.Close())
}

// Children implements Operator.
func (j *DependentJoin) Children() []Operator { return []Operator{j.Left, j.Right} }

// SetChild implements Operator.
func (j *DependentJoin) SetChild(i int, op Operator) {
	switch i {
	case 0:
		j.Left = op
	case 1:
		j.Right = op
	default:
		panic("DependentJoin has two children")
	}
	j.out = nil
}

// Name implements Operator.
func (j *DependentJoin) Name() string { return "Dependent Join" }

// Describe implements Operator.
func (j *DependentJoin) Describe() string { return j.BindDesc }
