package exec

import (
	"fmt"
	"time"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/types"
)

// ExternalSource abstracts the remote call behind a virtual table scan.
// Package vtab provides implementations for WebCount, WebPages, and
// WebFetch; the executor only needs to know how to invoke the call and how
// its results align with the scan's output schema.
type ExternalSource interface {
	// Name identifies the virtual table instance, e.g. "WebPages_AV".
	Name() string
	// Destination identifies the external service for the request pump's
	// per-destination concurrency limits, e.g. "altavista".
	Destination() string
	// NumEcho is the count of leading output columns that simply echo the
	// call's argument values (SearchExp, T1..Tn). The remaining output
	// columns are supplied by the call's result rows.
	NumEcho() int
	// CacheKey returns a canonical key for memoizing the call ([HN96]).
	CacheKey(args []types.Value) string
	// Call performs the (high-latency) external request. Result rows carry
	// only the non-echo output columns, in schema order.
	Call(args []types.Value) ([]types.Tuple, error)
}

// EVScan is the synchronous external virtual table scan of Section 4.1:
// each Open evaluates its parameter expressions against the correlated
// bindings supplied by an enclosing dependent join, performs the external
// call, and streams the resulting tuples. The query processor is idle for
// the full latency of every call — this is precisely the behavior
// asynchronous iteration (package async) replaces.
type EVScan struct {
	Source ExternalSource
	// Inputs supplies the call arguments. The first NumEcho() of them
	// correspond to echoed output columns; any further inputs (e.g. the
	// WebPages rank limit) parameterize the call without being echoed.
	Inputs []expr.Expr
	Out    *schema.Schema
	// Cache, when non-nil, memoizes call results across Opens ([HN96]).
	Cache ResultCache

	rows []types.Tuple
	pos  int
	// Per-instance profile counters for the span trace (EXPLAIN ANALYZE):
	// calls actually issued vs served from cache, across every Open of
	// this scan (a dependent join re-opens it once per outer binding).
	nCalls, nCacheHits int64
	// callSpans accumulates per-call timing spans while the query is
	// sampled; TraceChildren hands them out at Close. Nil when untraced.
	callSpans []*obs.Span
}

// ResultCache memoizes external call results.
type ResultCache interface {
	Get(key string) ([]types.Tuple, bool)
	Put(key string, rows []types.Tuple)
}

// NewEVScan builds a synchronous external scan.
func NewEVScan(src ExternalSource, inputs []expr.Expr, out *schema.Schema) *EVScan {
	return &EVScan{Source: src, Inputs: inputs, Out: out}
}

// Schema implements Operator.
func (s *EVScan) Schema() *schema.Schema { return s.Out }

// EvalArgs evaluates the scan's parameter expressions against the current
// correlated bindings. It rejects placeholder arguments: a dependent join
// whose bindings are still pending must stay below the ReqSync that fills
// them (the rewriter guarantees this; the check catches rewrite bugs).
func EvalArgs(name string, inputs []expr.Expr, ctx *Context) ([]types.Value, error) {
	args := make([]types.Value, len(inputs))
	for i, in := range inputs {
		if err := in.Bind(schema.New()); err != nil {
			return nil, err
		}
		v, err := in.Eval(ctx.Env, nil)
		if err != nil {
			return nil, fmt.Errorf("%s input %d: %w", name, i, err)
		}
		if v.IsPlaceholder() {
			return nil, fmt.Errorf("%s input %d is a pending placeholder; invalid plan rewrite", name, i)
		}
		args[i] = v
	}
	return args, nil
}

// Open implements Operator: it performs the external call (or serves it
// from cache).
func (s *EVScan) Open(ctx *Context) error {
	args, err := EvalArgs(s.Source.Name(), s.Inputs, ctx)
	if err != nil {
		return err
	}
	key := s.Source.CacheKey(args)
	if s.Cache != nil {
		if rows, ok := s.Cache.Get(key); ok {
			s.nCacheHits++
			s.rows = echoRows(args, s.Source.NumEcho(), rows)
			s.pos = 0
			return nil
		}
	}
	// A synchronous scan is about to block for the call's full latency;
	// don't start it if the query's deadline has already passed.
	if ctx.Ctx != nil {
		if err := ctx.Ctx.Err(); err != nil {
			return err
		}
	}
	ctx.Stats.ExternalCalls++
	s.nCalls++
	start := time.Now()
	var rows []types.Tuple
	if ctx.RetryCall != nil {
		rows, err = ctx.RetryCall(ctx.Ctx, func() ([]types.Tuple, error) {
			return s.Source.Call(args)
		})
	} else {
		rows, err = s.Source.Call(args)
	}
	if obs.SampledTrace(ctx.Ctx) != nil {
		detail := s.Source.Destination()
		if err != nil {
			detail += " error"
		}
		s.callSpans = append(s.callSpans, &obs.Span{
			Op: "engine.call", Detail: detail, Start: start, Dur: time.Since(start),
		})
	}
	if err != nil {
		switch ctx.Degrade {
		case DegradeDrop:
			// Treat the failed call as a zero-row result: downstream joins
			// drop the driving tuple, exactly like ReqSync's drop policy.
			ctx.Stats.DegradedCalls++
			rows = nil
		case DegradePartial:
			// One all-NULL result row: the driving tuple survives with the
			// call's attributes NULLed.
			ctx.Stats.DegradedCalls++
			width := s.Schema().Len() - s.Source.NumEcho()
			null := make(types.Tuple, width)
			for i := range null {
				null[i] = types.Null()
			}
			rows = []types.Tuple{null}
		default:
			return fmt.Errorf("%s: %w", s.Source.Name(), err)
		}
	}
	// Degraded results are never cached: the call may succeed next time.
	if s.Cache != nil && err == nil {
		s.Cache.Put(key, rows)
	}
	s.rows = echoRows(args, s.Source.NumEcho(), rows)
	s.pos = 0
	return nil
}

// echoRows prefixes each call result row with the echoed argument values,
// producing full output-schema tuples.
func echoRows(args []types.Value, numEcho int, rows []types.Tuple) []types.Tuple {
	out := make([]types.Tuple, len(rows))
	for i, r := range rows {
		t := make(types.Tuple, 0, numEcho+len(r))
		t = append(t, args[:numEcho]...)
		t = append(t, r...)
		out[i] = t
	}
	return out
}

// Next implements Operator.
func (s *EVScan) Next(ctx *Context) (types.Tuple, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	t := s.rows[s.pos]
	s.pos++
	if len(t) != s.Out.Len() {
		return nil, false, fmt.Errorf("%s: result width %d != schema width %d", s.Source.Name(), len(t), s.Out.Len())
	}
	return t, true, nil
}

// NextBatch implements BatchOperator by handing out windows of the call
// result materialized at Open.
func (s *EVScan) NextBatch(ctx *Context, max int) (Batch, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	end := s.pos + max
	if end > len(s.rows) {
		end = len(s.rows)
	}
	for _, t := range s.rows[s.pos:end] {
		if len(t) != s.Out.Len() {
			return nil, false, fmt.Errorf("%s: result width %d != schema width %d", s.Source.Name(), len(t), s.Out.Len())
		}
	}
	b := Batch(s.rows[s.pos:end:end])
	s.pos = end
	return b, true, nil
}

// Close implements Operator.
func (s *EVScan) Close() error {
	s.rows = nil
	return nil
}

// Children implements Operator.
func (s *EVScan) Children() []Operator { return nil }

// SetChild implements Operator.
func (s *EVScan) SetChild(int, Operator) { panic("EVScan has no children") }

// SpanExtras implements the trace-profile hook: external calls issued
// and cache hits served, accumulated over every Open.
func (s *EVScan) SpanExtras() map[string]int64 {
	return map[string]int64{"calls": s.nCalls, "cache_hits": s.nCacheHits}
}

// TraceChildren implements the async-span hook: per-call timing spans
// recorded while the query was sampled. The scan blocks inside the call
// (its wall time already lands in the span's self time); these children
// name the destination and per-call latency. Each span is handed out
// once.
func (s *EVScan) TraceChildren() []*obs.Span {
	out := s.callSpans
	s.callSpans = nil
	return out
}

// Name implements Operator.
func (s *EVScan) Name() string { return "EVScan" }

// Describe implements Operator.
func (s *EVScan) Describe() string { return s.Source.Name() }
