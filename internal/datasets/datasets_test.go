package datasets

import (
	"strings"
	"testing"
)

func TestStatesComplete(t *testing.T) {
	if len(States) != 50 {
		t.Fatalf("want 50 states, got %d", len(States))
	}
	seen := make(map[string]bool)
	for _, s := range States {
		if s.Name == "" || s.Capital == "" {
			t.Errorf("incomplete state: %+v", s)
		}
		if s.Population < 400_000 || s.Population > 40_000_000 {
			t.Errorf("%s: implausible 1998 population %d", s.Name, s.Population)
		}
		if seen[s.Name] {
			t.Errorf("duplicate state %s", s.Name)
		}
		seen[s.Name] = true
	}
	// Spot checks against the paper's sources.
	ca, _ := StateByName("California")
	if ca.Population != 32667000 || ca.Capital != "Sacramento" {
		t.Errorf("California: %+v", ca)
	}
	if _, ok := StateByName("Atlantis"); ok {
		t.Error("unknown state lookup")
	}
}

func TestSigsCount(t *testing.T) {
	// "For this small data set—37 tuples for the 37 ACM Sigs" (Section 4.1).
	if len(Sigs) != 37 {
		t.Fatalf("want 37 SIGs, got %d", len(Sigs))
	}
	seen := make(map[string]bool)
	for _, s := range Sigs {
		if !strings.HasPrefix(strings.ToUpper(s), "SIG") {
			t.Errorf("odd SIG name %q", s)
		}
		if seen[s] {
			t.Errorf("duplicate SIG %s", s)
		}
		seen[s] = true
	}
	// The Knuth ranking (paper footnote 3) must be a subset of Sigs.
	for _, k := range KnuthSigs {
		if !seen[k] {
			t.Errorf("KnuthSigs entry %s is not a SIG", k)
		}
	}
}

func TestCrossReferences(t *testing.T) {
	byName := make(map[string]bool)
	for _, s := range States {
		byName[s.Name] = true
	}
	for _, s := range FourCornersStates {
		if !byName[s] {
			t.Errorf("four-corners state %s unknown", s)
		}
	}
	for _, s := range Query6States {
		if !byName[s] {
			t.Errorf("query-6 state %s unknown", s)
		}
	}
	for _, s := range ScubaStates {
		if !byName[s] {
			t.Errorf("scuba state %s unknown", s)
		}
	}
	capitals := make(map[string]bool)
	for _, s := range States {
		capitals[s.Capital] = true
	}
	for _, c := range CommonWordCapitals {
		if !capitals[c] {
			t.Errorf("common-word capital %s unknown", c)
		}
	}
	movies := make(map[string]bool)
	for _, m := range Movies {
		movies[m] = true
	}
	for _, m := range ScubaMovies {
		if !movies[m] {
			t.Errorf("scuba movie %s unknown", m)
		}
	}
}

func TestTemplateConstantsPool(t *testing.T) {
	// Table 1 needs 2 runs x 8 instances of template 2 with V1 != V2:
	// 32 distinct constants.
	if len(TemplateConstants) < 32 {
		t.Fatalf("constant pool too small: %d", len(TemplateConstants))
	}
	seen := make(map[string]bool)
	for _, c := range TemplateConstants {
		if seen[c] {
			t.Errorf("duplicate constant %q", c)
		}
		seen[c] = true
	}
}
