// Package datasets embeds the small reference relations the WSQ/DSQ paper
// queries: the 50 U.S. states with 1998 census population estimates and
// capitals (Section 3.1), the 37 ACM Special Interest Groups (Section 4.1),
// a table of computer-science fields (Section 4.5, Example 3), and a movies
// table used by the DSQ sketch in Section 1. It also carries the pools of
// template constants used by the Table 1 experiments.
package datasets

// State is one row of the States(Name, Population, Capital) table.
type State struct {
	Name       string
	Population int64 // 1998 U.S. Census Bureau estimate
	Capital    string
}

// States lists the 50 U.S. states with 1998 population estimates, as used
// by Queries 1-5 of the paper.
var States = []State{
	{"Alabama", 4352000, "Montgomery"},
	{"Alaska", 614010, "Juneau"},
	{"Arizona", 4669000, "Phoenix"},
	{"Arkansas", 2538000, "Little Rock"},
	{"California", 32667000, "Sacramento"},
	{"Colorado", 3971000, "Denver"},
	{"Connecticut", 3274000, "Hartford"},
	{"Delaware", 744066, "Dover"},
	{"Florida", 14916000, "Tallahassee"},
	{"Georgia", 7642000, "Atlanta"},
	{"Hawaii", 1193000, "Honolulu"},
	{"Idaho", 1229000, "Boise"},
	{"Illinois", 12045000, "Springfield"},
	{"Indiana", 5899000, "Indianapolis"},
	{"Iowa", 2862000, "Des Moines"},
	{"Kansas", 2629000, "Topeka"},
	{"Kentucky", 3936000, "Frankfort"},
	{"Louisiana", 4369000, "Baton Rouge"},
	{"Maine", 1244000, "Augusta"},
	{"Maryland", 5135000, "Annapolis"},
	{"Massachusetts", 6147000, "Boston"},
	{"Michigan", 9817000, "Lansing"},
	{"Minnesota", 4725000, "Saint Paul"},
	{"Mississippi", 2752000, "Jackson"},
	{"Missouri", 5439000, "Jefferson City"},
	{"Montana", 880453, "Helena"},
	{"Nebraska", 1663000, "Lincoln"},
	{"Nevada", 1747000, "Carson City"},
	{"New Hampshire", 1185000, "Concord"},
	{"New Jersey", 8115000, "Trenton"},
	{"New Mexico", 1737000, "Santa Fe"},
	{"New York", 18175000, "Albany"},
	{"North Carolina", 7546000, "Raleigh"},
	{"North Dakota", 638244, "Bismarck"},
	{"Ohio", 11209000, "Columbus"},
	{"Oklahoma", 3347000, "Oklahoma City"},
	{"Oregon", 3282000, "Salem"},
	{"Pennsylvania", 12001000, "Harrisburg"},
	{"Rhode Island", 988480, "Providence"},
	{"South Carolina", 3836000, "Columbia"},
	{"South Dakota", 738171, "Pierre"},
	{"Tennessee", 5431000, "Nashville"},
	{"Texas", 19760000, "Austin"},
	{"Utah", 2100000, "Salt Lake City"},
	{"Vermont", 590883, "Montpelier"},
	{"Virginia", 6791000, "Richmond"},
	{"Washington", 5689000, "Olympia"},
	{"West Virginia", 1811000, "Charleston"},
	{"Wisconsin", 5224000, "Madison"},
	{"Wyoming", 480907, "Cheyenne"},
}

// Sigs lists the 37 ACM Special Interest Groups as of 1999 (Section 4.1:
// "37 tuples for the 37 ACM Sigs").
var Sigs = []string{
	"SIGACT", "SIGAda", "SIGAPL", "SIGAPP", "SIGARCH", "SIGART", "SIGBIO",
	"SIGCAPH", "SIGCAS", "SIGCHI", "SIGCOMM", "SIGCPR", "SIGCSE", "SIGCUE",
	"SIGDA", "SIGDOC", "SIGecom", "SIGGRAPH", "SIGGROUP", "SIGIR", "SIGKDD",
	"SIGMETRICS", "SIGMICRO", "SIGMIS", "SIGMOBILE", "SIGMOD", "SIGMM",
	"SIGOPS", "SIGPLAN", "SIGSAC", "SIGSAM", "SIGSIM", "SIGSOFT", "SIGSOUND",
	"SIGUCCS", "SIGWEB", "SIGNUM",
}

// KnuthSigs are the SIGs the paper reports as co-occurring with "Knuth" on
// the Web, in rank order; all other SIGs have Count = 0 (Section 4.1,
// footnote 3).
var KnuthSigs = []string{
	"SIGACT", "SIGPLAN", "SIGGRAPH", "SIGMOD", "SIGCOMM", "SIGSAM",
}

// CSFields is the CSFields(Name) table of Section 4.5, Example 3.
var CSFields = []string{
	"databases", "operating systems", "artificial intelligence",
	"computer graphics", "networking", "programming languages",
	"software engineering", "theory of computation", "human computer interaction",
	"computer architecture", "information retrieval", "machine learning",
	"distributed systems", "compilers", "computational geometry",
}

// Movies is a small movie relation used by the DSQ example ("an underwater
// thriller filmed in Florida", Section 1).
var Movies = []string{
	"The Abyss", "Jaws", "Titanic", "The Deep", "Waterworld",
	"Thunderball", "Flipper", "Free Willy", "Sphere", "The Big Blue",
	"Open Water", "Into the Blue", "Cocoon", "Splash", "20000 Leagues Under the Sea",
	"The Firm", "Fargo", "Casablanca", "Chinatown", "Top Gun",
	"Apollo 13", "Twister", "Dances with Wolves", "Forrest Gump", "Rocky",
}

// ScubaStates are the states the synthetic corpus correlates with the
// phrase "scuba diving", strongest first.
var ScubaStates = []string{"Florida", "Hawaii", "California"}

// ScubaMovies are the movies the synthetic corpus correlates with the
// phrase "scuba diving", strongest first.
var ScubaMovies = []string{"The Deep", "Open Water", "The Abyss", "Into the Blue"}

// TemplateConstants is the pool of common constants used to instantiate
// query templates in the Table 1 experiments ("computer", "beaches",
// "crime", "politics", "frogs", etc. — Section 5).
var TemplateConstants = []string{
	"computer", "beaches", "crime", "politics", "frogs",
	"weather", "music", "football", "hiking", "museums",
	"agriculture", "technology", "history", "tourism", "wildlife",
	"education", "mountains", "rivers", "festivals", "industry",
	"fishing", "camping", "universities", "lakes", "deserts",
	"forests", "economy", "elections", "traffic", "recycling",
	"astronomy", "gardens",
}

// FourCornersStates are the four states meeting at the Four Corners
// monument, in the count order the paper reports for Query 3.
var FourCornersStates = []string{"Colorado", "New Mexico", "Arizona", "Utah"}

// CommonWordCapitals are state capitals that double as common words or
// names on the Web; the paper's Query 4 finds these capitals out-counting
// their states (Atlanta, Lincoln, Boston, Jackson, Pierre, Columbia).
var CommonWordCapitals = []string{
	"Atlanta", "Lincoln", "Boston", "Jackson", "Pierre", "Columbia",
}

// Query6States are the states for which the paper's Query 6 found a top-5
// URL that AltaVista and Google agreed on (exactly four states).
var Query6States = []string{"Indiana", "Louisiana", "Minnesota", "Wyoming"}

// StateByName returns the state record with the given name.
func StateByName(name string) (State, bool) {
	for _, s := range States {
		if s.Name == name {
			return s, true
		}
	}
	return State{}, false
}
