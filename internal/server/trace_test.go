package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/search"
)

// TestTraceparentPropagation: a sampled incoming traceparent adopts the
// upstream trace id and ships the span tree back in the response (the
// coordinator's stitching contract); an unsampled one is ignored.
func TestTraceparentPropagation(t *testing.T) {
	env := newTestEnv(t, search.ZeroLatency(), core.Config{}, Options{Node: "w1"})
	tc := obs.NewTraceCtx()

	req, err := http.NewRequest("GET", env.url+"/query?q="+queryEscape(template1Query), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceparentHeader, tc.Traceparent(""))
	hres, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	var resp QueryResponse
	if err := json.NewDecoder(hres.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != tc.TraceID {
		t.Errorf("response trace_id = %q, want upstream %q", resp.TraceID, tc.TraceID)
	}
	if resp.Trace == nil {
		t.Fatal("sampled traceparent did not return a span tree")
	}
	if resp.Trace.Op != "wsqd.query" || resp.Trace.Detail != "w1" {
		t.Errorf("root = %s/%s, want wsqd.query/w1", resp.Trace.Op, resp.Trace.Detail)
	}
	if resp.Trace.Find("pump.call") == nil {
		t.Error("no pump.call span under the traced query")
	}

	// Unsampled traceparent: valid header, flags 00 — stays untraced.
	un := &obs.TraceCtx{TraceID: obs.NewTraceID(), Sampled: false}
	req2, _ := http.NewRequest("GET", env.url+"/query?q="+queryEscape(template1Query), nil)
	req2.Header.Set(obs.TraceparentHeader, un.Traceparent(""))
	hres2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer hres2.Body.Close()
	var resp2 QueryResponse
	if err := json.NewDecoder(hres2.Body).Decode(&resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Trace != nil || resp2.TraceID != "" {
		t.Errorf("unsampled traceparent produced trace_id=%q trace=%v", resp2.TraceID, resp2.Trace != nil)
	}
}

// TestHeadSampling: with -trace-sample 1 every query is captured
// server-side, but the response stays lean — no span tree unless the
// client asked. The tree is retrievable from /debug/traces by id.
func TestHeadSampling(t *testing.T) {
	env := newTestEnv(t, search.ZeroLatency(), core.Config{}, Options{Node: "w1", TraceSampleEvery: 1})

	code, body := httpGet(t, env.url+"/query?q="+queryEscape(template1Query))
	if code != http.StatusOK {
		t.Fatalf("query: %d: %s", code, body)
	}
	var resp QueryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.TraceID) != 32 {
		t.Fatalf("head-sampled query trace_id = %q", resp.TraceID)
	}
	if resp.Trace != nil {
		t.Error("head-sampled response carried the span tree without trace=1")
	}

	code, body = httpGet(t, env.url+"/debug/traces?trace_id="+resp.TraceID)
	if code != http.StatusOK {
		t.Fatalf("/debug/traces lookup: %d: %s", code, body)
	}
	var st obs.StoredTrace
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Root == nil || st.Root.Op != "wsqd.query" || st.Node != "w1" {
		t.Errorf("stored trace: %+v", st)
	}
	if st.Root.Find("AEVScan") == nil {
		t.Error("stored tree has no AEVScan span")
	}
}

// TestSlowTraceRetention: -trace-slow instruments every query for tail
// capture but stores only the ones that cross the threshold or fail.
func TestSlowTraceRetention(t *testing.T) {
	env := newTestEnv(t, search.ZeroLatency(), core.Config{},
		Options{Node: "w1", SlowTraceThreshold: time.Hour})
	srv := env.srv

	code, body := httpGet(t, env.url+"/query?q="+queryEscape(template1Query))
	if code != http.StatusOK {
		t.Fatalf("query: %d: %s", code, body)
	}
	var resp QueryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	// Instrumented (it has an id) but fast: not stored.
	if resp.TraceID == "" {
		t.Error("slow-threshold query has no trace id")
	}
	if n := srv.TraceSink().Total(); n != 0 {
		t.Errorf("fast query stored %d traces, want 0", n)
	}

	// A failing query is always retained, threshold or not.
	if code, _ = httpGet(t, env.url+"/query?q="+queryEscape("SELECT nope FROM nowhere")); code == http.StatusOK {
		t.Fatal("bad query succeeded")
	}
	if srv.TraceSink().Total() != 1 {
		t.Errorf("error trace not retained: total = %d", srv.TraceSink().Total())
	}

	// With a 1ns threshold everything is slow and everything is stored.
	env2 := newTestEnv(t, search.ZeroLatency(), core.Config{},
		Options{Node: "w1", SlowTraceThreshold: time.Nanosecond})
	srv2 := env2.srv
	if code, _ := httpGet(t, env2.url+"/query?q="+queryEscape(template1Query)); code != http.StatusOK {
		t.Fatal("query failed")
	}
	snap := srv2.TraceSink().Snapshot()
	if len(snap) != 1 || !snap[0].Slow {
		t.Fatalf("slow trace not captured: %+v", snap)
	}
}

// TestOpenMetricsEndpoint: /metrics?format=openmetrics carries bucket
// exemplars referencing real trace ids and terminates with # EOF, while
// the default exposition stays plain 0.0.4. Both pass the repo's lint.
func TestOpenMetricsEndpoint(t *testing.T) {
	env := newTestEnv(t, search.ZeroLatency(), core.Config{}, Options{Node: "w1", TraceSampleEvery: 1})

	// A traced query seeds the latency histogram with an exemplar.
	res, err := env.cl.Query(context.Background(), template1Query, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = res

	code, om := httpGet(t, env.url+"/metrics?format=openmetrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics?format=openmetrics: %d", code)
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Error("OpenMetrics exposition missing # EOF terminator")
	}
	if !strings.Contains(om, `# {trace_id="`) {
		t.Error("OpenMetrics exposition has no exemplars after a traced query")
	}
	if problems := obs.LintExposition(om); len(problems) > 0 {
		t.Errorf("openmetrics lint:\n%s", strings.Join(problems, "\n"))
	}

	code, plain := httpGet(t, env.url+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if strings.Contains(plain, "trace_id") || strings.Contains(plain, "# EOF") {
		t.Error("default /metrics leaked OpenMetrics extensions")
	}
	if problems := obs.LintExposition(plain); len(problems) > 0 {
		t.Errorf("plain lint:\n%s", strings.Join(problems, "\n"))
	}
}
