package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/search"
	"repro/internal/websim"
)

// testEnv is one wsqd stack: a DB with simulated engines and the paper
// tables, served over a real HTTP listener, plus a Client pointed at it.
type testEnv struct {
	db  *core.DB
	cl  *Client
	url string
	srv *Server
}

func newTestEnv(t *testing.T, model search.LatencyModel, cfg core.Config, opts Options) *testEnv {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	cfg.Async = true
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	corpus := websim.Default()
	db.RegisterEngine(search.NewDelayed(websim.NewAltaVista(corpus), model, 1), "AV")
	db.RegisterEngine(search.NewDelayed(websim.NewGoogle(corpus), model, 2), "G")
	if err := harness.LoadPaperTables(context.Background(), db); err != nil {
		t.Fatal(err)
	}
	srv := New(db, opts)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return &testEnv{db: db, cl: NewClient(hs.URL), url: hs.URL, srv: srv}
}

// template1Query sorts on the async attribute (the ReqSync stays below the
// Sort, so output order is deterministic) and limits to the distinct-count
// prefix so ties cannot reorder across runs.
const template1Query = `SELECT Name, Count FROM States, WebCount
	WHERE Name = T1 AND T2 = 'scuba diving' ORDER BY Count DESC LIMIT 3`

// TestConcurrentClientsShareBoundedPump is the core acceptance test for the
// serving layer: 8 concurrent clients fire multi-call queries at one wsqd
// and (a) every client sees exactly the single-client result, (b) the total
// number of in-flight external calls never exceeds the shared pump's
// MaxConcurrentCalls even though the clients together want far more.
func TestConcurrentClientsShareBoundedPump(t *testing.T) {
	const limit = 4
	env := newTestEnv(t, search.ZeroLatency(),
		core.Config{MaxConcurrentCalls: limit, MaxCallsPerDest: limit}, Options{})

	ref, err := env.cl.Query(context.Background(), template1Query, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Rows) == 0 {
		t.Fatal("reference query returned no rows")
	}
	want := mustJSON(t, ref.Rows)

	const clients, perClient = 8, 3
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				res, err := env.cl.Query(context.Background(), template1Query, 0)
				if err != nil {
					errs <- err
					return
				}
				if got := mustJSON(t, res.Rows); got != want {
					errs <- fmt.Errorf("concurrent result diverged:\n got %s\nwant %s", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := env.db.Pump().Stats()
	if st.MaxActive > limit {
		t.Errorf("pump MaxActive = %d, exceeds MaxConcurrentCalls = %d", st.MaxActive, limit)
	}
	if st.Registered < int64(clients*perClient) {
		t.Errorf("pump Registered = %d; every query should register external calls", st.Registered)
	}
}

// TestAggregateThroughputScales drives single-external-call queries (so the
// per-destination limit is never the bottleneck) in bench-latency mode:
// 8 clients must achieve at least 3x the aggregate throughput of 1 client,
// because the shared pump overlaps their calls.
func TestAggregateThroughputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based test")
	}
	model := search.LatencyModel{Base: 20 * time.Millisecond, CountFactor: 1}
	env := newTestEnv(t, model, core.Config{}, Options{})
	if _, err := env.db.ExecContext(context.Background(), `CREATE TABLE Probe (Name VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	if _, err := env.db.ExecContext(context.Background(), `INSERT INTO Probe VALUES ('Hawaii')`); err != nil {
		t.Fatal(err)
	}
	query := func(tag string, i int) string {
		return fmt.Sprintf(`SELECT Name, Count FROM Probe, WebCount
			WHERE Name = T1 AND T2 = 'probe %s %d'`, tag, i)
	}

	const perClient = 6
	run := func(clients int, tag string) float64 {
		var wg sync.WaitGroup
		start := time.Now()
		errs := make(chan error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					if _, err := env.cl.Query(context.Background(),
						query(fmt.Sprintf("%s-%d", tag, c), i), 0); err != nil {
						errs <- err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		return float64(clients*perClient) / time.Since(start).Seconds()
	}

	base := run(1, "base")
	loaded := run(8, "load")
	if ratio := loaded / base; ratio < 3 {
		t.Errorf("aggregate throughput ratio = %.1fx (1 client %.1f q/s, 8 clients %.1f q/s); want >= 3x",
			ratio, base, loaded)
	}
	if st := env.db.Pump().Stats(); st.MaxActive > async.DefaultMaxTotal {
		t.Errorf("pump MaxActive = %d, exceeds limit %d", st.MaxActive, async.DefaultMaxTotal)
	}
}

// TestDeadlineCancelsQueuedCalls sends a query whose deadline is far shorter
// than one external call: the client must get a deadline error, and the
// query's queued pump calls must be dropped rather than leaked — the pump
// drains back to (0 running, 0 queued).
func TestDeadlineCancelsQueuedCalls(t *testing.T) {
	model := search.LatencyModel{Base: 200 * time.Millisecond, CountFactor: 1}
	env := newTestEnv(t, model, core.Config{}, Options{})

	_, err := env.cl.Query(context.Background(), template1Query, 1*time.Millisecond)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("1ms-deadline query: got %v, want ErrDeadline", err)
	}

	// Running calls finish on their own (~200ms); queued ones must be
	// dropped at dispatch. Poll until the pump is fully drained.
	deadline := time.Now().Add(5 * time.Second)
	for {
		running, queued := env.db.Pump().Active()
		if running == 0 && queued == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pump did not drain: %d running, %d queued", running, queued)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := env.db.Pump().Stats(); st.Canceled == 0 {
		t.Error("expected canceled > 0: the deadline should drop queued calls")
	}

	// The pump must still be healthy for the next query.
	if _, err := env.cl.Query(context.Background(), template1Query, 30*time.Second); err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
}

// TestAdmissionControlRejectsOverflow saturates a 1-slot/1-queue server with
// 4 simultaneous slow queries: some execute, the overflow gets an immediate
// 503 surfaced as ErrOverloaded.
func TestAdmissionControlRejectsOverflow(t *testing.T) {
	model := search.LatencyModel{Base: 100 * time.Millisecond, CountFactor: 1}
	env := newTestEnv(t, model, core.Config{},
		Options{MaxConcurrentQueries: 1, MaxQueueDepth: 1})

	const n = 4
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ok, rejected, other int
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := env.cl.Query(context.Background(), template1Query, 0)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, ErrOverloaded):
				rejected++
			default:
				other++
			}
		}()
	}
	wg.Wait()
	if other != 0 {
		t.Errorf("unexpected errors: %d", other)
	}
	if ok == 0 || rejected == 0 {
		t.Errorf("got %d ok / %d rejected out of %d; want both nonzero", ok, rejected, n)
	}
	st, err := env.cl.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries.Rejected != int64(rejected) {
		t.Errorf("statusz rejected = %d, want %d", st.Queries.Rejected, rejected)
	}
}

// TestReadOnlyRejectsWrites: without AllowWrites, DDL/DML through /query is
// refused with 403 and the tables stay untouched.
func TestReadOnlyRejectsWrites(t *testing.T) {
	env := newTestEnv(t, search.ZeroLatency(), core.Config{}, Options{})
	resp, err := http.Post(env.url+"/query", "application/json",
		strings.NewReader(`{"sql": "CREATE TABLE Evil (X INT)"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("write on read-only server: HTTP %d, want 403", resp.StatusCode)
	}
	if _, ok := env.db.Catalog().Get("Evil"); ok {
		t.Error("write executed despite read-only mode")
	}
	if _, err := env.cl.Query(context.Background(), `CREATE TABLE Evil (X INT)`, 0); err == nil {
		t.Error("client write on read-only server should error")
	}
}

// TestStatuszAndGetQuery exercises the GET /query path and checks that
// /statusz reflects the queries it served.
func TestStatuszAndGetQuery(t *testing.T) {
	env := newTestEnv(t, search.ZeroLatency(), core.Config{CacheSize: 64}, Options{})

	resp, err := http.Get(env.url + "/query?q=" + strings.ReplaceAll(
		"SELECT Name FROM States ORDER BY Name LIMIT 2", " ", "+"))
	if err != nil {
		t.Fatal(err)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || qr.RowCount != 2 {
		t.Fatalf("GET /query: HTTP %d, %d rows", resp.StatusCode, qr.RowCount)
	}

	// Same external call twice: the second run must hit the result cache.
	for i := 0; i < 2; i++ {
		if _, err := env.cl.Query(context.Background(), template1Query, 0); err != nil {
			t.Fatal(err)
		}
	}
	st, err := env.cl.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries.Total != 3 {
		t.Errorf("statusz total = %d, want 3", st.Queries.Total)
	}
	if st.Queries.LatencyMS.Count != 3 {
		t.Errorf("latency count = %d, want 3", st.Queries.LatencyMS.Count)
	}
	if st.Pump.Registered == 0 || st.Pump.CacheHits == 0 {
		t.Errorf("pump stats: registered=%d cache_hits=%d; want both nonzero",
			st.Pump.Registered, st.Pump.CacheHits)
	}
	if st.Cache == nil || st.Cache.Hits == 0 {
		t.Errorf("cache stats missing or zero hits: %+v", st.Cache)
	}
	if len(st.Engines) != 2 {
		t.Errorf("engines = %v, want 2 entries", st.Engines)
	}

	// Liveness.
	hr, err := http.Get(env.url + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", hr.StatusCode, err)
	}
	hr.Body.Close()
}

func mustJSON(t *testing.T, v interface{}) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
