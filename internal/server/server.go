// Package server implements wsqd, the multi-client WSQ query daemon: an
// HTTP/JSON front-end that owns one core.DB and executes many SELECTs
// concurrently over the single shared ReqPump.
//
// The paper describes ReqPump as a *global* request manager — "one counter
// to monitor the total number of active requests, and one counter for each
// external destination" — which only becomes interesting when competing
// queries from different users contend for those counters. This package
// supplies that missing serving layer:
//
//   - POST /query (or GET /query?q=...) executes one statement with a
//     per-query deadline; deadline expiry cancels the query's still-queued
//     pump calls and releases its in-flight slots as they drain.
//   - Admission control bounds the blast radius of a traffic spike: at most
//     MaxConcurrentQueries execute at once, at most MaxQueueDepth wait, and
//     everything beyond that is rejected immediately with 503.
//   - GET /statusz exposes the pump counters, per-destination in-flight
//     gauges, cache hit rate, admission state, and per-query latency
//     percentiles.
//   - GET /metrics exposes the DB's metrics registry — pump slot-wait and
//     per-destination call-latency histograms, engine request histograms,
//     server admission counters — in the Prometheus text format.
//   - GET /debug/pprof/* serves the standard Go profiling endpoints.
//   - ?trace=1 (or "trace": true in the POST body) attaches the query's
//     per-operator span tree to the response.
//
// The companion Client (client.go) is the programmatic face used by the
// wsq shell's remote mode and wsqbench's -serve load generator.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/obs/profile"
	"repro/internal/types"
)

// Options configures a Server. The zero value selects sane defaults.
type Options struct {
	// MaxConcurrentQueries bounds simultaneously executing statements
	// (default 32). Queries beyond the bound wait in the admission queue.
	MaxConcurrentQueries int
	// MaxQueueDepth bounds queries waiting for an execution slot
	// (default 2×MaxConcurrentQueries). Arrivals beyond it get 503.
	MaxQueueDepth int
	// DefaultTimeout applies when a request carries no timeout_ms
	// (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested timeouts (default 5m).
	MaxTimeout time.Duration
	// AllowWrites permits CREATE/DROP/INSERT through /query; by default the
	// server is read-only and such statements get 403.
	AllowWrites bool
	// LatencyWindow is the number of recent query latencies kept for the
	// /statusz percentiles (default 1024).
	LatencyWindow int
	// DefaultDegrade is the failed-call degradation policy applied when a
	// request does not choose one (wsqd -degrade). DegradeFail by default.
	DefaultDegrade exec.DegradePolicy
	// RequestLog, when non-nil, receives one structured (JSON) line per
	// /query request: SQL, outcome, latency, row and call counts.
	RequestLog io.Writer
	// Node names this process in stitched traces and profile snapshots
	// ("w1", "coord"); empty for a standalone wsqd.
	Node string
	// TraceSampleEvery head-samples 1 in N queries for distributed
	// tracing (wsqd -trace-sample). 0 disables head sampling; explicit
	// ?trace=1 requests and sampled incoming traceparent headers are
	// always traced regardless.
	TraceSampleEvery int
	// SlowTraceThreshold, when > 0, instruments every query and retains
	// traces of queries slower than the threshold (or erroring) in
	// /debug/traces — the tail-capture policy (wsqd -trace-slow).
	SlowTraceThreshold time.Duration
	// Profiles, when non-nil, receives per-query observations (latency,
	// external-call fanout) and is served at /profiles; New also
	// attaches it to the DB's pump as its ProfileSink.
	Profiles *profile.Store
}

func (o *Options) fill() {
	if o.MaxConcurrentQueries <= 0 {
		o.MaxConcurrentQueries = 32
	}
	if o.MaxQueueDepth <= 0 {
		o.MaxQueueDepth = 2 * o.MaxConcurrentQueries
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 5 * time.Minute
	}
	if o.LatencyWindow <= 0 {
		o.LatencyWindow = 1024
	}
}

// Server is the wsqd HTTP front-end over one shared database.
type Server struct {
	db   *core.DB
	opts Options
	mux  *http.ServeMux
	sem  chan struct{}

	// mu guards the admission gauges; the cumulative counters live in
	// the DB's metrics registry (shared with /metrics) and /statusz reads
	// them back from there.
	mu     sync.Mutex
	queued int
	active int

	total    *obs.Counter
	failed   *obs.Counter
	rejected *obs.Counter
	timedOut *obs.Counter
	latency  *obs.Histogram

	logMu sync.Mutex // serializes RequestLog lines

	sampler *obs.Sampler
	traces  *obs.TraceSink

	lat   *latencyRing
	start time.Time
}

// New builds a server over db. The db's engines and tables must already be
// registered/loaded; the server never mutates them unless AllowWrites.
func New(db *core.DB, opts Options) *Server {
	opts.fill()
	s := &Server{
		db:      db,
		opts:    opts,
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, opts.MaxConcurrentQueries),
		sampler: obs.NewSampler(opts.TraceSampleEvery),
		traces:  obs.NewTraceSink(0, 0),
		lat:     newLatencyRing(opts.LatencyWindow),
		start:   time.Now(),
	}
	if opts.Profiles != nil {
		db.Pump().SetProfiles(opts.Profiles)
	}
	reg := db.Metrics()
	s.total = reg.Counter("wsq_server_queries_total", "Queries received by /query.")
	s.failed = reg.Counter("wsq_server_queries_failed_total", "Queries that returned an error.")
	s.rejected = reg.Counter("wsq_server_queries_rejected_total", "Queries rejected by admission control (503).")
	s.timedOut = reg.Counter("wsq_server_queries_timedout_total", "Queries whose deadline expired (while queued or executing).")
	s.latency = reg.Histogram("wsq_server_query_seconds", "End-to-end query execution latency.", nil)
	reg.GaugeFunc("wsq_server_queries_active", "Queries currently executing.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.active)
	})
	reg.GaugeFunc("wsq_server_queries_queued", "Queries waiting for an admission slot.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.queued)
	})
	reg.GaugeFunc("wsq_server_uptime_seconds", "Server uptime.", func() float64 {
		return time.Since(s.start).Seconds()
	})
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.Handle("/debug/traces", s.traces)
	if opts.Profiles != nil {
		s.mux.Handle("/profiles", opts.Profiles.Handler())
	}
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// handleMetrics serves the DB registry in Prometheus text format.
// ?format=openmetrics selects the OpenMetrics encoding, whose histogram
// buckets carry exemplars linking tail observations to captured traces.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "openmetrics" {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		_ = s.db.Metrics().WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.db.Metrics().WritePrometheus(w)
}

// TraceSink exposes the server's captured-trace ring (tests and the
// coordinator's merged /debug/traces).
func (s *Server) TraceSink() *obs.TraceSink { return s.traces }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ---------------------------------------------------------------------------
// Admission control

var errOverloaded = errors.New("server overloaded")

// admit blocks until an execution slot is free, the context expires, or
// the wait queue is full. On success the caller must invoke the returned
// release function exactly once.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	// Fast path: a slot is free right now.
	select {
	case s.sem <- struct{}{}:
	default:
		// Slow path: join the bounded wait queue.
		s.mu.Lock()
		if s.queued >= s.opts.MaxQueueDepth {
			s.mu.Unlock()
			s.rejected.Inc()
			return nil, errOverloaded
		}
		s.queued++
		s.mu.Unlock()
		select {
		case s.sem <- struct{}{}:
			s.mu.Lock()
			s.queued--
			s.mu.Unlock()
		case <-ctx.Done():
			s.mu.Lock()
			s.queued--
			s.mu.Unlock()
			return nil, ctx.Err()
		}
	}
	s.mu.Lock()
	s.active++
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
		<-s.sem
	}, nil
}

// ---------------------------------------------------------------------------
// /query

// QueryRequest is the POST /query body.
type QueryRequest struct {
	SQL string `json:"sql"`
	// TimeoutMS bounds the query's wall time (admission wait included);
	// 0 selects the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Degrade selects the failed-call policy for this query: "fail",
	// "drop", or "partial" (empty = the server default).
	Degrade string `json:"degrade,omitempty"`
	// Trace attaches the query's per-operator span tree to the response
	// (GET form: ?trace=1).
	Trace bool `json:"trace,omitempty"`
}

// QueryResponse is the /query success body. Row values are JSON-native:
// null, number, or string.
type QueryResponse struct {
	Columns       []string        `json:"columns"`
	Rows          [][]interface{} `json:"rows"`
	RowCount      int             `json:"row_count"`
	ExternalCalls int64           `json:"external_calls"`
	// DegradedCalls counts external calls whose failure was absorbed by the
	// query's drop/partial degradation policy.
	DegradedCalls int64   `json:"degraded_calls,omitempty"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	// TraceID is the query's tier-wide trace identity, present whenever
	// the query was traced (explicitly, head-sampled, or propagated).
	TraceID string `json:"trace_id,omitempty"`
	// Trace is the per-operator span tree, present when requested with
	// trace=1 or when the incoming traceparent was sampled (the stitching
	// coordinator grafts it into the cross-process tree).
	Trace *obs.SpanJSON `json:"trace,omitempty"`
}

// ErrorResponse is the /query failure body.
type ErrorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, err := parseQueryRequest(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}

	degrade := s.opts.DefaultDegrade
	if req.Degrade != "" {
		var derr error
		degrade, derr = exec.ParseDegrade(req.Degrade)
		if derr != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: derr.Error()})
			return
		}
	}

	timeout := s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.opts.MaxTimeout {
		timeout = s.opts.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Trace decision. A sampled incoming traceparent (the coordinator or
	// an upstream wsqd already chose to trace this query) or an explicit
	// trace=1 always instruments; otherwise head sampling decides; a
	// slow-trace threshold instruments everything so the tail can be
	// captured after the fact. The untraced path costs one header lookup
	// and one atomic — no allocation.
	var tc *obs.TraceCtx
	incomingSampled := false
	if h := r.Header.Get(obs.TraceparentHeader); h != "" {
		if tid, _, sampled, err := obs.ParseTraceparent(h); err == nil && sampled {
			incomingSampled = true
			tc = &obs.TraceCtx{TraceID: tid, Sampled: true}
		}
	}
	headSampled := tc == nil && s.sampler.Sample()
	slowOnly := false // instrumented solely for tail capture: store only if slow/error
	if tc == nil && (req.Trace || headSampled || s.opts.SlowTraceThreshold > 0) {
		slowOnly = !req.Trace && !headSampled
		tc = obs.NewTraceCtx()
	}
	if tc != nil {
		ctx = obs.WithTrace(ctx, tc)
	}

	s.total.Inc()

	release, err := s.admit(ctx)
	if err != nil {
		if errors.Is(err, errOverloaded) {
			w.Header().Set("Retry-After", "1")
			s.logRequest(req, http.StatusServiceUnavailable, 0, nil, err)
			writeJSON(w, http.StatusServiceUnavailable,
				ErrorResponse{Error: fmt.Sprintf("overloaded: %d executing, %d queued", s.opts.MaxConcurrentQueries, s.opts.MaxQueueDepth)})
			return
		}
		s.timedOut.Inc()
		s.logRequest(req, http.StatusGatewayTimeout, 0, nil, err)
		writeJSON(w, http.StatusGatewayTimeout,
			ErrorResponse{Error: "deadline expired while queued for admission"})
		return
	}
	defer release()

	start := time.Now()
	var res *core.Result
	opts := core.QueryOptions{Degrade: &degrade, Trace: req.Trace || tc != nil}
	if s.opts.AllowWrites {
		res, err = s.db.ExecContextOpts(ctx, req.SQL, opts)
	} else {
		res, err = s.db.QueryContextOpts(ctx, req.SQL, opts)
	}
	elapsed := time.Since(start)
	s.lat.record(elapsed)
	traceID := ""
	if tc != nil {
		traceID = tc.TraceID
	}
	s.latency.ObserveExemplar(elapsed.Seconds(), traceID)
	if s.opts.Profiles != nil && res != nil {
		s.opts.Profiles.QueryObserved(elapsed, int(res.Stats.ExternalCalls))
	}

	// Assemble the query's span tree: a "wsqd.query" root spanning the
	// whole execution, the operator tree beneath it, and any off-tree
	// spans (cache-peer round trips) collected by the trace context as
	// async children.
	var root *obs.Span
	if tc != nil && res != nil && res.Trace != nil {
		root = &obs.Span{
			Op: "wsqd.query", Detail: s.opts.Node,
			Start: start, Dur: elapsed, Rows: res.Trace.Rows,
		}
		root.AddChild(res.Trace)
		for _, rs := range tc.TakeRemote() {
			root.AddAsyncChild(rs)
		}
	}
	slow := s.opts.SlowTraceThreshold > 0 && elapsed >= s.opts.SlowTraceThreshold
	if tc != nil && (!slowOnly || slow || err != nil) {
		st := &obs.StoredTrace{
			TraceID:   tc.TraceID,
			SQL:       truncateSQL(req.SQL),
			Node:      s.opts.Node,
			StartedAt: start,
			ElapsedMS: float64(elapsed.Microseconds()) / 1000.0,
			Slow:      slow,
		}
		if err != nil {
			st.Error = err.Error()
		}
		if root != nil {
			st.Root = root.JSON()
		}
		s.traces.Add(st)
	}

	if err != nil {
		s.failed.Inc()
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			s.timedOut.Inc()
			status = http.StatusGatewayTimeout
		case errors.Is(err, async.ErrPumpClosed):
			status = http.StatusServiceUnavailable
		case !s.opts.AllowWrites && isWriteRejection(err):
			status = http.StatusForbidden
		}
		s.logRequest(req, status, elapsed, nil, err)
		writeJSON(w, status, ErrorResponse{Error: err.Error()})
		return
	}

	s.logRequest(req, http.StatusOK, elapsed, res, nil)
	resp := QueryResponse{
		Columns:       columnsOrEmpty(res.Columns),
		Rows:          encodeRows(res.Rows),
		RowCount:      len(res.Rows),
		ExternalCalls: res.Stats.ExternalCalls,
		DegradedCalls: res.Stats.DegradedCalls,
		ElapsedMS:     float64(elapsed.Microseconds()) / 1000.0,
		TraceID:       traceID,
	}
	// The span tree rides the response when the client asked for it or
	// when a sampled upstream (the stitching coordinator) propagated the
	// trace — head-sampled and slow-captured trees stay server-side in
	// /debug/traces.
	if root != nil && (req.Trace || incomingSampled) {
		resp.Trace = root.JSON()
	}
	writeJSON(w, http.StatusOK, resp)
}

// requestLogEntry is one structured request-log line.
type requestLogEntry struct {
	Time          string  `json:"t"`
	SQL           string  `json:"sql"`
	Status        int     `json:"status"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	Rows          int     `json:"rows"`
	ExternalCalls int64   `json:"external_calls"`
	Degraded      bool    `json:"degraded,omitempty"`
	Traced        bool    `json:"traced,omitempty"`
	Error         string  `json:"error,omitempty"`
}

// logRequest emits one JSON line per /query request when a request log
// is configured.
func (s *Server) logRequest(req QueryRequest, status int, elapsed time.Duration, res *core.Result, err error) {
	if s.opts.RequestLog == nil {
		return
	}
	e := requestLogEntry{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		SQL:       truncateSQL(req.SQL),
		Status:    status,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000.0,
		Traced:    req.Trace,
	}
	if res != nil {
		e.Rows = len(res.Rows)
		e.ExternalCalls = res.Stats.ExternalCalls
		e.Degraded = res.Stats.DegradedCalls > 0
	}
	if err != nil {
		e.Error = err.Error()
	}
	line, merr := json.Marshal(e)
	if merr != nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	_, _ = s.opts.RequestLog.Write(append(line, '\n'))
}

// truncateSQL bounds logged statements so one giant query cannot bloat
// the log.
func truncateSQL(sql string) string {
	const max = 500
	if len(sql) <= max {
		return sql
	}
	return sql[:max] + "..."
}

// isWriteRejection recognizes the read-only path's refusal of non-queries
// (core.QueryContext phrases it as "expected a query, got ...").
func isWriteRejection(err error) bool {
	return err != nil && strings.Contains(err.Error(), "expected a query")
}

func parseQueryRequest(r *http.Request) (QueryRequest, error) {
	var req QueryRequest
	switch r.Method {
	case http.MethodGet:
		req.SQL = r.URL.Query().Get("q")
		if ms := r.URL.Query().Get("timeout_ms"); ms != "" {
			if _, err := fmt.Sscanf(ms, "%d", &req.TimeoutMS); err != nil {
				return req, fmt.Errorf("bad timeout_ms %q", ms)
			}
		}
		switch v := r.URL.Query().Get("trace"); v {
		case "", "0", "false":
		case "1", "true":
			req.Trace = true
		default:
			return req, fmt.Errorf("bad trace %q (use trace=1)", v)
		}
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			return req, fmt.Errorf("read request body: %w", err)
		}
		if err := json.Unmarshal(body, &req); err != nil {
			return req, fmt.Errorf("parse request body: %w", err)
		}
	default:
		return req, fmt.Errorf("method %s not allowed; use GET or POST", r.Method)
	}
	if req.SQL == "" {
		return req, errors.New("missing sql (POST {\"sql\": ...} or GET ?q=...)")
	}
	return req, nil
}

// encodeRows converts engine tuples to JSON-native values.
func encodeRows(rows []types.Tuple) [][]interface{} {
	out := make([][]interface{}, len(rows))
	for i, row := range rows {
		r := make([]interface{}, len(row))
		for j, v := range row {
			switch v.Kind {
			case types.KindNull:
				r[j] = nil
			case types.KindInt:
				r[j] = v.I
			case types.KindFloat:
				r[j] = v.F
			default:
				r[j] = v.AsString()
			}
		}
		out[i] = r
	}
	return out
}

func columnsOrEmpty(cols []string) []string {
	if cols == nil {
		return []string{}
	}
	return cols
}

// ---------------------------------------------------------------------------
// /statusz

// Statusz is the observability snapshot served at /statusz.
type Statusz struct {
	UptimeSeconds float64        `json:"uptime_s"`
	Queries       QueryStats     `json:"queries"`
	Pump          PumpStats      `json:"pump"`
	Cache         *CacheStats    `json:"cache,omitempty"`
	Engines       []string       `json:"engines"`
	DestActive    map[string]int `json:"dest_active"`
}

// QueryStats summarizes the admission layer and per-query latencies.
type QueryStats struct {
	Total     int64       `json:"total"`
	Active    int         `json:"active"`
	Queued    int         `json:"queued"`
	Failed    int64       `json:"failed"`
	Rejected  int64       `json:"rejected"`
	TimedOut  int64       `json:"timed_out"`
	LatencyMS Percentiles `json:"latency_ms"`
}

// PumpStats mirrors async.Stats plus the live gauges.
type PumpStats struct {
	Registered int64 `json:"registered"`
	Started    int64 `json:"started"`
	Completed  int64 `json:"completed"`
	CacheHits  int64 `json:"cache_hits"`
	// PeerHits counts calls served by a peer shard's cache (tier mode).
	PeerHits     int64 `json:"peer_hits"`
	Coalesced    int64 `json:"coalesced"`
	Canceled     int64 `json:"canceled"`
	Retries      int64 `json:"retries"`
	Hedges       int64 `json:"hedges"`
	HedgeWins    int64 `json:"hedge_wins"`
	CallTimeouts int64 `json:"call_timeouts"`
	CallsFailed  int64 `json:"calls_failed"`
	MaxActive    int   `json:"max_active"`
	Active       int   `json:"active"`
	Queued       int   `json:"queued"`
}

// CacheStats summarizes the shared result cache.
type CacheStats struct {
	Entries   int     `json:"entries"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	ps := s.db.Pump().Stats()
	running, queuedCalls := s.db.Pump().Active()
	st := Statusz{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Pump: PumpStats{
			Registered:   ps.Registered,
			Started:      ps.Started,
			Completed:    ps.Completed,
			CacheHits:    ps.CacheHits,
			PeerHits:     ps.PeerHits,
			Coalesced:    ps.Coalesced,
			Canceled:     ps.Canceled,
			Retries:      ps.Retries,
			Hedges:       ps.Hedges,
			HedgeWins:    ps.HedgeWins,
			CallTimeouts: ps.CallTimeouts,
			CallsFailed:  ps.CallsFailed,
			MaxActive:    ps.MaxActive,
			Active:       running,
			Queued:       queuedCalls,
		},
		Engines:    s.db.Engines().Names(),
		DestActive: s.db.Pump().DestActive(),
	}
	s.mu.Lock()
	active, queued := s.active, s.queued
	s.mu.Unlock()
	st.Queries = QueryStats{
		Total:    s.total.Value(),
		Active:   active,
		Queued:   queued,
		Failed:   s.failed.Value(),
		Rejected: s.rejected.Value(),
		TimedOut: s.timedOut.Value(),
	}
	st.Queries.LatencyMS = s.lat.percentiles()
	if c := s.db.Cache(); c != nil {
		hits, misses := c.Stats()
		cs := &CacheStats{Entries: c.Len(), Hits: hits, Misses: misses, Evictions: c.Evictions()}
		if hits+misses > 0 {
			cs.HitRate = float64(hits) / float64(hits+misses)
		}
		st.Cache = cs
	}
	writeJSON(w, http.StatusOK, st)
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// ---------------------------------------------------------------------------
// Latency percentiles

// Percentiles reports per-query latency quantiles over the recent window.
type Percentiles struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// latencyRing keeps the last N query latencies for percentile reporting.
type latencyRing struct {
	mu    sync.Mutex
	buf   []time.Duration
	next  int
	fill  int
	count int64
	max   time.Duration
}

func newLatencyRing(n int) *latencyRing {
	return &latencyRing{buf: make([]time.Duration, n)}
}

func (l *latencyRing) record(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = d
	l.next = (l.next + 1) % len(l.buf)
	if l.fill < len(l.buf) {
		l.fill++
	}
	l.count++
	if d > l.max {
		l.max = d
	}
}

func (l *latencyRing) percentiles() Percentiles {
	l.mu.Lock()
	snap := make([]time.Duration, l.fill)
	copy(snap, l.buf[:l.fill])
	count, max := l.count, l.max
	l.mu.Unlock()
	p := Percentiles{Count: count, Max: ms(max)}
	if len(snap) == 0 {
		return p
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	q := func(f float64) float64 {
		i := int(f * float64(len(snap)-1))
		return ms(snap[i])
	}
	p.P50, p.P90, p.P99 = q(0.50), q(0.90), q(0.99)
	return p
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }
