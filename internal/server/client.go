package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a running wsqd server. It is safe for concurrent use and
// pools connections aggressively — a load generator drives many concurrent
// queries against the same host.
//
// It is the remote counterpart of core.DB's Exec: the wsq shell's -server
// mode and wsqbench's -serve mode both build on it.
type Client struct {
	baseURL string
	http    *http.Client
}

// ErrOverloaded is returned by Query when the server rejected the request
// at admission (HTTP 503): the execution slots and the wait queue were both
// full. Callers may retry after a backoff.
var ErrOverloaded = errors.New("wsqd: server overloaded")

// ErrDeadline is returned by Query when the server aborted the query at
// its deadline (HTTP 504).
var ErrDeadline = errors.New("wsqd: query deadline exceeded")

// NewClient builds a client for the wsqd server at baseURL
// (e.g. "http://127.0.0.1:8080").
func NewClient(baseURL string) *Client {
	tr := &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
		IdleConnTimeout:     60 * time.Second,
	}
	return &Client{
		baseURL: strings.TrimRight(baseURL, "/"),
		http:    &http.Client{Transport: tr},
	}
}

// Query executes one statement remotely. timeout bounds the server-side
// execution (0 = the server default); ctx bounds the whole HTTP exchange.
func (c *Client) Query(ctx context.Context, sql string, timeout time.Duration) (*QueryResponse, error) {
	req := QueryRequest{SQL: sql}
	if timeout > 0 {
		req.TimeoutMS = int(timeout / time.Millisecond)
	}
	return c.QueryOpts(ctx, req)
}

// QueryOpts executes a fully specified request remotely (per-query timeout
// and degradation policy included).
func (c *Client) QueryOpts(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("wsqd: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("wsqd: read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var er ErrorResponse
		_ = json.Unmarshal(raw, &er)
		switch resp.StatusCode {
		case http.StatusServiceUnavailable:
			return nil, fmt.Errorf("%w: %s", ErrOverloaded, er.Error)
		case http.StatusGatewayTimeout:
			return nil, fmt.Errorf("%w: %s", ErrDeadline, er.Error)
		default:
			if er.Error != "" {
				return nil, fmt.Errorf("wsqd: %s", er.Error)
			}
			return nil, fmt.Errorf("wsqd: HTTP %d", resp.StatusCode)
		}
	}
	var out QueryResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("wsqd: parse response: %w", err)
	}
	return &out, nil
}

// Status fetches the server's /statusz snapshot.
func (c *Client) Status(ctx context.Context) (*Statusz, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/statusz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("wsqd: %w", err)
	}
	defer resp.Body.Close()
	var out Statusz
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("wsqd: parse statusz: %w", err)
	}
	return &out, nil
}

// Format renders a query response as an aligned text table, mirroring
// core.Result.Format so the wsq shell looks identical in remote mode.
func (r *QueryResponse) Format() string {
	if len(r.Columns) == 0 {
		return fmt.Sprintf("ok (%d rows affected)\n", r.RowCount)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := formatValue(v)
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range r.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for ci, s := range row {
			if ci > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[ci], s)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(r.Rows))
	return b.String()
}

// formatValue renders one JSON-decoded cell. Integers survive the float64
// round-trip unscathed for the magnitudes the engine produces.
func formatValue(v interface{}) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case float64:
		if x == float64(int64(x)) {
			return fmt.Sprintf("%d", int64(x))
		}
		return fmt.Sprintf("%.4g", x)
	case string:
		return x
	default:
		return fmt.Sprintf("%v", x)
	}
}
