package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/search"
	"repro/internal/websim"
)

// The chaos suite: many concurrent clients against a wsqd whose engines
// inject transient faults on almost a third of calls, with a retry budget
// shallow enough that some calls exhaust it and hit the degradation path.

// newChaosEnv builds a wsqd stack over Flaky-wrapped engines.
func newChaosEnv(t *testing.T, faultProb float64, retry async.RetryPolicy) *testEnv {
	t.Helper()
	db, err := core.Open(core.Config{Dir: t.TempDir(), Async: true, Retry: retry})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	corpus := websim.Default()
	model := search.LatencyModel{Base: 2 * time.Millisecond, Jitter: time.Millisecond, CountFactor: 0.8}
	avRng, gRng := search.NewRand(31), search.NewRand(32)
	faults := search.TransientOnly(faultProb)
	db.RegisterEngine(search.NewFlaky(search.NewDelayedRand(websim.NewAltaVista(corpus), model, avRng), faults, avRng), "AV")
	db.RegisterEngine(search.NewFlaky(search.NewDelayedRand(websim.NewGoogle(corpus), model, gRng), faults, gRng), "G")
	if err := harness.LoadPaperTables(context.Background(), db); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(New(db, Options{MaxConcurrentQueries: 16, MaxQueueDepth: 64}))
	t.Cleanup(hs.Close)
	return &testEnv{db: db, cl: NewClient(hs.URL), url: hs.URL}
}

// settleGoroutines waits for the goroutine count to drop back to within
// slack of base, failing the test if it never does.
func settleGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines never settled: %d now vs %d at baseline", n, base)
}

// TestChaosConcurrentClientsDegradeCleanly drives 8 concurrent clients with
// drop/partial degradation against 30%% transient-fault engines and asserts
// the serving contract: transient faults never surface as HTTP errors, no
// goroutine leaks, gauges return to zero, and /statusz shows the retry and
// degradation machinery actually fired.
func TestChaosConcurrentClientsDegradeCleanly(t *testing.T) {
	// Two attempts at 30% faults: ~9% of calls exhaust retries, so the
	// degradation path is exercised heavily but queries still finish fast.
	env := newChaosEnv(t, 0.3, async.RetryPolicy{
		MaxAttempts: 2,
		BaseBackoff: 200 * time.Microsecond,
		JitterFrac:  0.5,
	})
	base := runtime.NumGoroutine()

	const clients, perClient = 8, 6
	policies := []exec.DegradePolicy{exec.DegradeDrop, exec.DegradePartial}
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; q < perClient; q++ {
				pol := policies[(c+q)%len(policies)]
				req := QueryRequest{
					SQL:     fmt.Sprintf(`SELECT Name, Count FROM States, WebCount WHERE Name = T1 AND T2 = 'term%d'`, (c*perClient+q)%5),
					Degrade: pol.String(),
				}
				res, err := env.cl.QueryOpts(context.Background(), req)
				if err != nil {
					errs <- fmt.Errorf("client %d query %d (%s): %w", c, q, pol, err)
					continue
				}
				if pol == exec.DegradePartial && res.RowCount != 50 {
					errs <- fmt.Errorf("client %d query %d: partial policy lost rows: %d of 50", c, q, res.RowCount)
				}
				if pol == exec.DegradeDrop && res.RowCount > 50 {
					errs <- fmt.Errorf("client %d query %d: drop policy grew rows: %d", c, q, res.RowCount)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Idle keep-alive connections each hold serve/read goroutines; drop
	// them so the leak check sees only what the query path left behind.
	env.cl.http.CloseIdleConnections()
	settleGoroutines(t, base, 10)

	st, err := env.cl.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries.Active != 0 || st.Queries.Queued != 0 {
		t.Errorf("gauges did not return to zero: active=%d queued=%d", st.Queries.Active, st.Queries.Queued)
	}
	if st.Queries.Active < 0 || st.Queries.Queued < 0 || st.Pump.Active < 0 {
		t.Errorf("negative gauge: active=%d queued=%d pump-active=%d",
			st.Queries.Active, st.Queries.Queued, st.Pump.Active)
	}
	if st.Queries.Failed != 0 {
		t.Errorf("%d queries failed despite drop/partial degradation", st.Queries.Failed)
	}
	if st.Pump.Retries == 0 {
		t.Error("/statusz shows zero retries under 30% fault injection")
	}
	if st.Pump.CallsFailed == 0 {
		t.Error("retry budget of 2 at 30% faults should exhaust sometimes; CallsFailed is 0")
	}
	if st.Pump.Active != 0 {
		t.Errorf("pump active = %d after all queries returned", st.Pump.Active)
	}
}

// TestChaosFailPolicySurfaces500ButRecovers: with the default fail policy a
// retry-exhausted transient fault errors the query (HTTP 500), but the
// server keeps serving and its gauges stay consistent.
func TestChaosFailPolicySurfaces500ButRecovers(t *testing.T) {
	env := newChaosEnv(t, 0.6, async.RetryPolicy{MaxAttempts: 1})
	sawError := false
	for i := 0; i < 10 && !sawError; i++ {
		_, err := env.cl.Query(context.Background(),
			`SELECT Name, Count FROM States, WebCount WHERE Name = T1 AND T2 = 'chaos' LIMIT 3`, 0)
		sawError = err != nil
	}
	if !sawError {
		t.Fatal("60% faults with no retries never failed a fail-policy query")
	}
	st, err := env.cl.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries.Failed == 0 {
		t.Error("failed-query counter did not record the failure")
	}
	if st.Queries.Active != 0 {
		t.Errorf("active gauge stuck at %d", st.Queries.Active)
	}
}
