package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/search"
)

func queryEscape(s string) string { return url.QueryEscape(s) }

func httpGet(t *testing.T, target string) (int, string) {
	t.Helper()
	resp, err := http.Get(target)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsEndpoint is the observability acceptance test: after one real
// query, /metrics serves lint-clean Prometheus text containing the pump
// slot-wait histogram, the per-destination call-latency histogram for the
// engine the query actually hit, the engine request histogram, and the
// server counters — all from the one shared registry.
func TestMetricsEndpoint(t *testing.T) {
	env := newTestEnv(t, search.ZeroLatency(), core.Config{}, Options{})
	if _, err := env.cl.Query(context.Background(), template1Query, 0); err != nil {
		t.Fatal(err)
	}

	code, body := httpGet(t, env.url+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	if problems := obs.LintExposition(body); len(problems) != 0 {
		t.Errorf("exposition not lint-clean:\n%s", strings.Join(problems, "\n"))
	}
	for _, want := range []string{
		"wsq_pump_slot_wait_seconds_bucket",
		`wsq_pump_call_latency_seconds_bucket{dest="altavista"`,
		`wsq_engine_request_seconds_bucket{engine="altavista"`,
		"wsq_server_queries_total 1",
		"wsq_server_query_seconds_count 1",
		"wsq_pump_calls_registered_total",
		"wsq_server_uptime_seconds",
		"# TYPE wsq_pump_slot_wait_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsConcurrentScrape scrapes /metrics while queries execute; run
// under -race this pins the registry's scrape path against the pump's and
// server's hot-path updates.
func TestMetricsConcurrentScrape(t *testing.T) {
	env := newTestEnv(t, search.ZeroLatency(), core.Config{}, Options{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, err := env.cl.Query(context.Background(), template1Query, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 10; i++ {
		if code, _ := httpGet(t, env.url+"/metrics"); code != http.StatusOK {
			t.Errorf("scrape %d: status %d", i, code)
		}
	}
	wg.Wait()
}

// TestQueryTraceRoundTrip requests ?trace=1 and checks the span tree
// arrives in the response: root rows match the row count, a ReqSync node
// is present with the settlement extras, and an untraced request carries
// no trace.
func TestQueryTraceRoundTrip(t *testing.T) {
	env := newTestEnv(t, search.ZeroLatency(), core.Config{}, Options{})

	code, body := httpGet(t, env.url+"/query?trace=1&q="+queryEscape(template1Query))
	if code != http.StatusOK {
		t.Fatalf("traced GET = %d: %s", code, body)
	}
	var resp QueryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("trace=1 response has no trace")
	}
	if resp.Trace.Rows != int64(resp.RowCount) {
		t.Errorf("root span rows = %d, row_count = %d", resp.Trace.Rows, resp.RowCount)
	}
	var reqSync *obs.SpanJSON
	var walk func(*obs.SpanJSON)
	walk = func(s *obs.SpanJSON) {
		if s.Op == "ReqSync" && reqSync == nil {
			reqSync = s
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(resp.Trace)
	if reqSync == nil {
		t.Fatalf("no ReqSync span in trace: %s", body)
	}
	if reqSync.Extra["settled"] == 0 {
		t.Errorf("ReqSync settled = 0; extras = %v", reqSync.Extra)
	}

	// POST form with "trace": true.
	res, err := env.cl.Query(context.Background(), template1Query, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("untraced query carried a trace")
	}

	// Bad trace values are rejected, not silently ignored.
	if code, _ := httpGet(t, env.url+"/query?trace=yes&q="+queryEscape(template1Query)); code != http.StatusBadRequest {
		t.Errorf("trace=yes: status %d, want 400", code)
	}
}

// TestStatuszGoldenFields guards the /statusz contract now that its
// counters are backed by the metrics registry: every pre-existing field
// must still be present under its original JSON name.
func TestStatuszGoldenFields(t *testing.T) {
	env := newTestEnv(t, search.ZeroLatency(), core.Config{}, Options{})
	if _, err := env.cl.Query(context.Background(), template1Query, 0); err != nil {
		t.Fatal(err)
	}
	code, body := httpGet(t, env.url+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("GET /statusz = %d", code)
	}
	var st map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"uptime_s", "queries", "pump", "engines", "dest_active"} {
		if _, ok := st[key]; !ok {
			t.Errorf("/statusz missing top-level field %q", key)
		}
	}
	var q map[string]json.RawMessage
	if err := json.Unmarshal(st["queries"], &q); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"total", "active", "queued", "failed", "rejected", "timed_out", "latency_ms"} {
		if _, ok := q[key]; !ok {
			t.Errorf("/statusz queries missing field %q", key)
		}
	}
	var qs QueryStats
	if err := json.Unmarshal(st["queries"], &qs); err != nil {
		t.Fatal(err)
	}
	if qs.Total != 1 {
		t.Errorf("queries.total = %d, want 1", qs.Total)
	}
	var p map[string]json.RawMessage
	if err := json.Unmarshal(st["pump"], &p); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"registered", "started", "completed", "cache_hits", "coalesced",
		"canceled", "retries", "hedges", "hedge_wins", "call_timeouts", "calls_failed",
		"max_active", "active", "queued"} {
		if _, ok := p[key]; !ok {
			t.Errorf("/statusz pump missing field %q", key)
		}
	}
}

// TestRequestLog checks the structured per-request log: one JSON line per
// /query with outcome and counts, including error lines.
func TestRequestLog(t *testing.T) {
	var buf syncBuffer
	env := newTestEnv(t, search.ZeroLatency(), core.Config{}, Options{RequestLog: &buf})
	if _, err := env.cl.Query(context.Background(), template1Query, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := env.cl.Query(context.Background(), "SELECT nope FROM nowhere", 0); err == nil {
		t.Fatal("bad query should fail")
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("request log lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	var ok requestLogEntry
	if err := json.Unmarshal([]byte(lines[0]), &ok); err != nil {
		t.Fatal(err)
	}
	if ok.Status != http.StatusOK || ok.Rows == 0 || ok.ExternalCalls == 0 || ok.Error != "" {
		t.Errorf("success line = %+v", ok)
	}
	if !strings.Contains(ok.SQL, "WebCount") {
		t.Errorf("success line SQL = %q", ok.SQL)
	}
	var bad requestLogEntry
	if err := json.Unmarshal([]byte(lines[1]), &bad); err != nil {
		t.Fatal(err)
	}
	if bad.Status == http.StatusOK || bad.Error == "" {
		t.Errorf("error line = %+v", bad)
	}
}

// syncBuffer is a goroutine-safe strings.Builder for log capture.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
