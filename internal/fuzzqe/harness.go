package fuzzqe

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/async"
	"repro/internal/exec"
	"repro/internal/sqlparse"
	"repro/internal/types"
)

// Variant is one plan regime the differential harness executes a query
// under.
type Variant struct {
	Name string
	// DisableHash forces nested-loop joins (and suppresses the semi-join
	// rewrite), the paper's baseline plans.
	DisableHash bool
	// Async applies the asynchronous-iteration rewrite.
	Async bool
	// BatchSize overrides the executor batch granularity (0 = default).
	BatchSize int
}

// Variants are the four regimes every query runs under: the synchronous
// nested-loop plan, the async percolated/consolidated nested-loop plan,
// and the hash-join plan under async at batch sizes 1 and 256.
var Variants = []Variant{
	{Name: "sync-nlj", DisableHash: true},
	{Name: "async-nlj", DisableHash: true, Async: true},
	{Name: "async-hash-b1", Async: true, BatchSize: 1},
	{Name: "async-hash-b256", Async: true, BatchSize: 256},
}

// VariantResult is one variant's observed behavior.
type VariantResult struct {
	Name     string
	Multiset map[string]int
	Rows     []types.Tuple // projected rows in emission order
	Calls    int64         // ctx.Stats.ExternalCalls
	Settled  int64         // sum of ReqSync "settled" counters across the plan
	Err      error
}

// Divergence is one detected disagreement: between a variant and the
// ground truth, between variants, or between observed and predicted
// plan behavior (call counts, settlement accounting, output order).
type Divergence struct {
	Spec    *QuerySpec
	SQL     string
	Variant string
	Kind    string // "error" | "result" | "calls" | "settle" | "order"
	Detail  string
}

// Error renders the divergence for logs and repro files.
func (d *Divergence) Error() string {
	return fmt.Sprintf("%s divergence in %s: %s\n  query: %s", d.Kind, d.Variant, d.Detail, d.SQL)
}

// Runner executes specs differentially against an Env.
type Runner struct {
	Env *Env
	// Mutate, when non-nil, post-processes every async-rewritten plan
	// before execution. It exists for the fuzzer's self-test: a mutation
	// that re-introduces a percolation clash must be caught as a
	// divergence within a bounded number of queries.
	Mutate func(exec.Operator) exec.Operator
}

// RunOne evaluates spec's ground truth and executes it under every
// variant, returning the first divergence found (nil when all regimes
// agree). The returned error reports harness-level failures — a spec the
// truth evaluator itself cannot handle — not query divergences.
func (r *Runner) RunOne(ctx context.Context, spec *QuerySpec) (*Divergence, error) {
	truth, err := r.Env.Truth(spec)
	if err != nil {
		return nil, fmt.Errorf("ground truth for %q: %w", spec.SQL(), err)
	}
	sql := spec.SQL()
	diverge := func(v, kind, detail string) *Divergence {
		return &Divergence{Spec: spec, SQL: sql, Variant: v, Kind: kind, Detail: detail}
	}
	for _, v := range Variants {
		res := r.runVariant(ctx, spec, v)
		if res.Err != nil {
			return diverge(v.Name, "error", res.Err.Error()), nil
		}
		if d := diffMultisets(truth.Multiset, res.Multiset); d != "" {
			return diverge(v.Name, "result", d), nil
		}
		want := truth.SyncCalls
		if v.Async {
			want = truth.AsyncCalls
		}
		if res.Calls != want {
			return diverge(v.Name, "calls",
				fmt.Sprintf("issued %d external calls, plan model predicts %d", res.Calls, want)), nil
		}
		if v.Async {
			wantSettle := truth.AsyncSettledHash
			if v.DisableHash {
				wantSettle = truth.AsyncSettledNLJ
			}
			if res.Settled != wantSettle {
				return diverge(v.Name, "settle",
					fmt.Sprintf("ReqSyncs settled %d of %d issued calls, plan model predicts %d settled",
						res.Settled, res.Calls, wantSettle)), nil
			}
		}
		// The async rewrite can percolate a ReqSync above a Sort whose
		// keys it does not fill, which reorders late-settling tuples, so
		// ordered output is only asserted for the synchronous plan (see
		// DESIGN.md §11).
		if !v.Async && len(spec.OrderBy) > 0 {
			if d := checkOrdered(spec, res.Rows); d != "" {
				return diverge(v.Name, "order", d), nil
			}
		}
	}
	return nil, nil
}

// runVariant plans and executes spec under one regime.
func (r *Runner) runVariant(ctx context.Context, spec *QuerySpec, v Variant) VariantResult {
	res := VariantResult{Name: v.Name}
	sel, err := sqlparse.ParseSelect(spec.SQL())
	if err != nil {
		res.Err = fmt.Errorf("parse: %w", err)
		return res
	}
	pl := *r.Env.Planner
	pl.DisableHashJoins = v.DisableHash
	op, err := pl.PlanSelect(sel)
	if err != nil {
		res.Err = fmt.Errorf("plan: %w", err)
		return res
	}
	if v.Async {
		op = async.Rewrite(op, r.Env.Pump)
		if r.Mutate != nil {
			op = r.Mutate(op)
		}
	}
	ectx := exec.NewContextWith(ctx)
	ectx.BatchSize = v.BatchSize
	rows, err := exec.Run(ectx, op)
	res.Settled = sumSettled(op)
	if err != nil {
		res.Err = fmt.Errorf("exec: %w", err)
		return res
	}
	res.Rows = rows
	res.Calls = ectx.Stats.ExternalCalls
	res.Multiset = make(map[string]int, len(rows))
	for _, row := range rows {
		res.Multiset[EncodeRow(row)]++
	}
	return res
}

// sumSettled totals the "settled" counter over every ReqSync in the plan.
func sumSettled(op exec.Operator) int64 {
	var n int64
	if rs, ok := op.(*async.ReqSync); ok {
		n += rs.SpanExtras()["settled"]
	}
	for _, c := range op.Children() {
		n += sumSettled(c)
	}
	return n
}

// diffMultisets returns "" when equal, else a short description naming a
// few rows whose multiplicities differ ("truth" is the expected side).
func diffMultisets(want, got map[string]int) string {
	var diffs []string
	for k, w := range want {
		if g := got[k]; g != w {
			diffs = append(diffs, fmt.Sprintf("row %q: truth has %d, variant has %d", printable(k), w, g))
		}
	}
	for k, g := range got {
		if _, ok := want[k]; !ok {
			diffs = append(diffs, fmt.Sprintf("row %q: truth has 0, variant has %d", printable(k), g))
		}
	}
	if len(diffs) == 0 {
		return ""
	}
	sort.Strings(diffs)
	if len(diffs) > 4 {
		diffs = append(diffs[:4], fmt.Sprintf("... and %d more", len(diffs)-4))
	}
	return strings.Join(diffs, "; ")
}

// checkOrdered verifies rows are sorted per the spec's ORDER BY keys.
func checkOrdered(spec *QuerySpec, rows []types.Tuple) string {
	idx := make([]int, len(spec.OrderBy))
	for i, k := range spec.OrderBy {
		idx[i] = -1
		for pi, p := range spec.Proj {
			if p == k.Col {
				idx[i] = pi
				break
			}
		}
		if idx[i] < 0 {
			return fmt.Sprintf("order key %s not projected", k.Col)
		}
	}
	for ri := 1; ri < len(rows); ri++ {
		for ki, k := range spec.OrderBy {
			c := rows[ri-1][idx[ki]].Compare(rows[ri][idx[ki]])
			if k.Desc {
				c = -c
			}
			if c < 0 {
				break // strictly ordered on this key
			}
			if c > 0 {
				return fmt.Sprintf("rows %d and %d out of order on %s", ri-1, ri, k.Col)
			}
		}
	}
	return ""
}

func printable(key string) string {
	return strings.ReplaceAll(key, "\x1f", "|")
}
