package fuzzqe

import (
	"sort"

	"repro/internal/async"
	"repro/internal/exec"
	"repro/internal/sqlparse"
)

// Coverage buckets generated queries by rewrite-shape signature — the
// operator nesting of the async-rewritten hash plan, which encodes the
// clash pattern (where each ReqSync came to rest), the join kinds, and
// the surviving operator order. Generation is biased toward buckets
// visited least (KQE-lite): structurally novel plans are where rewrite
// bugs live, and unsteered generation keeps revisiting the common
// shapes.
type Coverage struct {
	visits map[string]int
}

// NewCoverage returns an empty tracker.
func NewCoverage() *Coverage { return &Coverage{visits: make(map[string]int)} }

// Signature plans spec (hash joins enabled, async rewrite applied — the
// richest regime) without executing it and returns the plan's shape
// string, e.g. "Project(ReqSync(Filter(DependentJoin(...))))".
func (e *Env) Signature(spec *QuerySpec) (string, error) {
	sel, err := sqlparse.ParseSelect(spec.SQL())
	if err != nil {
		return "", err
	}
	pl := *e.Planner
	op, err := pl.PlanSelect(sel)
	if err != nil {
		return "", err
	}
	op = async.Rewrite(op, e.Pump)
	return exec.Shape(op), nil
}

// Record counts one executed query in the signature's bucket.
func (c *Coverage) Record(sig string) { c.visits[sig]++ }

// Visits returns the bucket's query count.
func (c *Coverage) Visits(sig string) int { return c.visits[sig] }

// Buckets returns the number of distinct shapes seen.
func (c *Coverage) Buckets() int { return len(c.visits) }

// Top returns up to n (signature, count) pairs, most-visited first — the
// fuzzer's end-of-run coverage report.
func (c *Coverage) Top(n int) []struct {
	Sig   string
	Count int
} {
	out := make([]struct {
		Sig   string
		Count int
	}, 0, len(c.visits))
	for s, k := range c.visits {
		out = append(out, struct {
			Sig   string
			Count int
		}{s, k})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Sig < out[j].Sig
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// NextSteered draws k candidate specs and returns the one whose shape
// bucket has been visited least, with its signature. Planning a candidate
// costs microseconds; executing it costs external calls — so spending a
// few plans to pick each execution shifts the run toward unvisited plan
// structure. Candidates that fail to plan are skipped (and the last one
// is returned unsteered if every candidate fails, letting the harness
// surface the planning error as a divergence).
func (g *Gen) NextSteered(cov *Coverage, k int) (*QuerySpec, string) {
	var best *QuerySpec
	bestSig := ""
	bestVisits := -1
	for i := 0; i < k; i++ {
		spec := g.Next()
		sig, err := g.env.Signature(spec)
		if err != nil {
			if best == nil {
				best, bestSig = spec, ""
			}
			continue
		}
		v := cov.Visits(sig)
		if bestVisits < 0 || v < bestVisits {
			best, bestSig, bestVisits = spec, sig, v
		}
		if v == 0 {
			break // an unvisited bucket: no need to draw more
		}
	}
	return best, bestSig
}
