package fuzzqe

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/async"
	"repro/internal/exec"
	"repro/internal/expr"
)

// TestFuzzSmoke is the tier-1 differential run: a seeded,
// coverage-steered stream of generated queries, each executed under all
// four plan regimes and checked against the offline ground truth. Any
// divergence is a real engine (or model) bug; the failure message carries
// the full SQL so it can be minimized with wsqfuzz.
func TestFuzzSmoke(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 40
	}
	env, err := NewTempEnv(7)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	g := NewGen(env, 11)
	cov := NewCoverage()
	r := &Runner{Env: env}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		spec, sig := g.NextSteered(cov, 4)
		if sig != "" {
			cov.Record(sig)
		}
		d, err := r.RunOne(ctx, spec)
		if err != nil {
			t.Fatalf("query %d harness error: %v", i, err)
		}
		if d != nil {
			t.Fatalf("query %d: %s", i, d.Error())
		}
	}
	if b := cov.Buckets(); b < n/10 {
		t.Errorf("coverage steering found only %d plan shapes in %d queries", b, n)
	}
}

// TestCorpusReplay replays the checked-in regression corpus: queries that
// historically diverged (or hung the rewrite) before their fixes, each
// minimized while preserving its async plan shape. See each file's note
// field for provenance.
func TestCorpusReplay(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty regression corpus: testdata/*.json missing")
	}
	env, err := NewTempEnv(7)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	r := &Runner{Env: env}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			blob, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			var spec QuerySpec
			if err := json.Unmarshal(blob, &spec); err != nil {
				t.Fatal(err)
			}
			d, err := r.RunOne(context.Background(), &spec)
			if err != nil {
				t.Fatalf("harness error: %v", err)
			}
			if d != nil {
				t.Fatalf("%s\nnote: %s", d.Error(), spec.Note)
			}
		})
	}
}

// TestMutationSelfTest checks the fuzzer can actually catch rewrite bugs:
// a test-only mutation re-introduces the percolation clash the rewrite
// exists to prevent — it pushes a clashing selection back below its
// ReqSync, where it evaluates placeholder values — and the harness must
// flag a divergence within a bounded number of queries, with the shrinker
// reducing the catch to a small repro.
func TestMutationSelfTest(t *testing.T) {
	env, err := NewTempEnv(7)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	g := NewGen(env, 99)
	r := &Runner{Env: env, Mutate: pushClashingFilterBelowRS}
	ctx := context.Background()
	var caught *Divergence
	for i := 0; i < 1000 && caught == nil; i++ {
		spec := g.Next()
		d, err := r.RunOne(ctx, spec)
		if err != nil {
			t.Fatalf("query %d harness error: %v", i, err)
		}
		caught = d
	}
	if caught == nil {
		t.Fatal("broken percolation not caught within 1000 queries")
	}
	min := Shrink(caught.Spec, func(cand *QuerySpec) bool {
		d, err := r.RunOne(ctx, cand)
		return err == nil && d != nil && d.Kind == caught.Kind && d.Variant == caught.Variant
	})
	if len(min.Joins) > 3 {
		t.Errorf("shrunk repro still has %d joins: %s", len(min.Joins), min.SQL())
	}
	// The unmutated engine must be clean on the shrunk query — the
	// divergence belongs to the mutation, not the engine.
	clean := &Runner{Env: env}
	if d, err := clean.RunOne(ctx, min); err != nil || d != nil {
		t.Fatalf("shrunk repro diverges without the mutation: %v %v", err, d)
	}
}

// pushClashingFilterBelowRS is the self-test mutation: wherever a
// clashing selection rests directly above a ReqSync (the position
// percolation's hoisting produces), swap the two so the selection
// evaluates placeholder tuples below the synchronization point.
func pushClashingFilterBelowRS(op exec.Operator) exec.Operator {
	if f, ok := op.(*exec.Filter); ok {
		if rs, ok2 := f.Children()[0].(*async.ReqSync); ok2 && expr.References(f.Pred, rs.A) {
			f.SetChild(0, rs.Children()[0])
			rs.SetChild(0, f)
			return rs
		}
	}
	for i, c := range op.Children() {
		op.SetChild(i, pushClashingFilterBelowRS(c))
	}
	return op
}

// TestShrinkFixpoint: with an always-true keep, the shrinker must reach
// the minimal skeleton — no joins (web joins cascading away with the
// dimension columns they bind to), no filters, a single projected column,
// and a collapsed Id range.
func TestShrinkFixpoint(t *testing.T) {
	v := int64(100)
	spec := &QuerySpec{
		IDLo: 10, IDHi: 90,
		Joins: []Join{
			{Kind: JoinMovie, Alias: "m"},
			{Kind: JoinWebPages, Alias: "w1", Engine: "G", BindCol: "m.Mk", RankLimit: 3},
			{Kind: JoinWebCount, Alias: "w2", Engine: "AV", BindCol: "w1.URL"},
		},
		Filters:  []Filter{{Col: "m.Len", Op: "<", IntVal: &v}},
		Distinct: true,
		Proj:     []string{"m.Len", "w2.Count", "f.Id"},
		OrderBy:  []OrderKey{{Col: "f.Id"}},
	}
	min := Shrink(spec, func(*QuerySpec) bool { return true })
	if len(min.Joins) != 0 || len(min.Filters) != 0 || len(min.OrderBy) != 0 || min.Distinct {
		t.Errorf("not minimal: %+v", min)
	}
	if len(min.Proj) != 1 || min.IDLo != min.IDHi {
		t.Errorf("projection/range not minimal: %s", min.SQL())
	}
}

// TestShrinkCascade: dropping a dimension join must cascade over the web
// joins bound to its columns and everything referencing them.
func TestShrinkCascade(t *testing.T) {
	spec := &QuerySpec{
		IDLo: 0, IDHi: 9,
		Joins: []Join{
			{Kind: JoinMovie, Alias: "m"},
			{Kind: JoinWebPages, Alias: "w1", Engine: "G", BindCol: "m.Mk", RankLimit: 1},
			{Kind: JoinWebCount, Alias: "w2", Engine: "AV", BindCol: "w1.URL"},
		},
		Proj: []string{"w2.Count"},
	}
	cand := dropJoin(spec, 0)
	if len(cand.Joins) != 0 {
		t.Errorf("cascade left joins behind: %+v", cand.Joins)
	}
	if len(cand.Proj) != 1 || cand.Proj[0] != "f.Id" {
		t.Errorf("projection not repaired: %v", cand.Proj)
	}
}

// TestRegenCorpus rebuilds the regression corpus under testdata/. It is
// skipped unless FUZZQE_REGEN=1: the corpus is a checked-in artifact, and
// regeneration is only needed when the generator or the corpus recipe
// changes. Each entry is a query that exposed a real bug during the
// fuzzer's development, minimized while preserving its async-rewritten
// plan shape (so the regression keeps exercising the code path that
// broke), then verified divergence-free on the fixed engine.
func TestRegenCorpus(t *testing.T) {
	if os.Getenv("FUZZQE_REGEN") == "" {
		t.Skip("set FUZZQE_REGEN=1 to rebuild testdata/")
	}
	env, err := NewTempEnv(7)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()

	// Historical catches from the seed-42 stream, by generation index.
	wanted := map[int]struct{ name, note string }{
		1: {"settle-carrier-drop",
			"a stored-side join below the ReqSync drops every carrier of some calls, so fewer calls settle than were issued; caught the naive settled==issued model"},
		33: {"pin-url-binding",
			"w2.T1 = w1.URL makes the second dependent join's bindings depend on a pending call, pinning the ReqSync cluster below it"},
		46: {"web-eq-hash-key",
			"equi conjunct w2.URL = m.Mk becomes a hash-join key referencing a web column, forcing the join-to-selection-over-cross-product fallback"},
		271: {"stacked-clashing-filters",
			"two clashing selections stacked on one ReqSync; percolation hoisted them through each other forever (rewrite hang, fixed by hoisting the stack top)"},
	}
	g := NewGen(env, 42)
	specs := map[string]*QuerySpec{}
	for i := 0; i <= 271; i++ {
		s := g.Next()
		if w, ok := wanted[i]; ok {
			s.Note = w.note
			specs[w.name] = s
		}
	}

	// The pin-blocked-hoist catch came from a steered seed-1 run; its
	// minimized form is embedded directly.
	specs["pin-blocked-hoist"] = &QuerySpec{
		IDLo: 82, IDHi: 82,
		Joins: []Join{
			{Kind: JoinMovie, Alias: "m"},
			{Kind: JoinWebPages, Alias: "w1", Engine: "AV", BindCol: "m.Mk", RankLimit: 1},
			{Kind: JoinWebCount, Alias: "w2", Engine: "AV", BindCol: "w1.URL"},
		},
		Filters: []Filter{{Col: "f.Tk", Op: "<=", RCol: "w1.Date"}},
		Proj:    []string{"m.Len"},
		Note: "percolation hoisted a clashing selection above a dependent join that pins the ReqSync, " +
			"issuing web calls for rows the selection should have eliminated first (calls divergence, fixed by blocksReqSync)",
	}

	// Also from a steered seed-1 run: a unit whose referenced web join is
	// pinned BELOW the unit's own entry — the values are real by the time
	// the unit applies, so it must not be treated as deferred.
	specs["pin-settles-below-entry"] = &QuerySpec{
		IDLo: 41, IDHi: 41,
		Joins: []Join{
			{Kind: JoinWebPages, Alias: "w1", Engine: "G", BindCol: "f.Tk", RankLimit: 1},
			{Kind: JoinWebPages, Alias: "w2", Engine: "AV", BindCol: "w1.URL", RankLimit: 1},
			{Kind: JoinState, Alias: "s"},
		},
		Filters: []Filter{{Col: "s.Cap", Op: ">", RCol: "w1.URL"}},
		Proj:    []string{"f.Id"},
		Note: "s.Cap > w1.URL sits above the dependent join that pins w1's ReqSync, so it filters real " +
			"values inline; caught the plan model deferring every web-referencing unit to its settlement site",
	}

	r := &Runner{Env: env}
	ctx := context.Background()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	for name, spec := range specs {
		origSig, err := env.Signature(spec)
		if err != nil {
			t.Fatalf("%s: signature: %v", name, err)
		}
		min := Shrink(spec, func(cand *QuerySpec) bool {
			sig, err := env.Signature(cand)
			if err != nil || sig != origSig {
				return false
			}
			d, err := r.RunOne(ctx, cand)
			return err == nil && d == nil
		})
		if d, err := r.RunOne(ctx, min); err != nil || d != nil {
			t.Fatalf("%s: minimized corpus entry not clean: %v %v", name, err, d)
		}
		blob, err := json.MarshalIndent(min, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", name+".json")
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %s", path, min.SQL())
	}
}
