package fuzzqe

import (
	"fmt"
	"strings"
)

// Join kinds. Dimension joins are keyed equi-joins against the fact
// table; web joins are dependent joins against a WSQ virtual table.
const (
	JoinState    = "state"
	JoinTerm     = "term"
	JoinMovie    = "movie"
	JoinWebCount = "webcount"
	JoinWebPages = "webpages"
)

// Join is one FROM-clause extension in a QuerySpec. For web joins,
// BindCol names the earlier column bound to T1 by equality, Engine is the
// virtual-table suffix ("AV" or "G"), T2Const optionally binds T2 to a
// constant, and RankLimit bounds WebPages.Rank.
type Join struct {
	Kind      string `json:"kind"`
	Alias     string `json:"alias"`
	Engine    string `json:"engine,omitempty"`
	BindCol   string `json:"bind_col,omitempty"`
	T2Const   string `json:"t2_const,omitempty"`
	RankLimit int    `json:"rank_limit,omitempty"`
}

// IsWeb reports whether the join targets a virtual table.
func (j *Join) IsWeb() bool { return j.Kind == JoinWebCount || j.Kind == JoinWebPages }

// Filter is one restricted WHERE conjunct: a qualified column compared to
// a constant or to another column, or an IS [NOT] NULL test. Op is one of
// = <> < <= > >= isnull isnotnull.
type Filter struct {
	Col    string  `json:"col"`
	Op     string  `json:"op"`
	RCol   string  `json:"rcol,omitempty"`
	IntVal *int64  `json:"int_val,omitempty"`
	StrVal *string `json:"str_val,omitempty"`
}

// OrderKey is one ORDER BY key over a projected column.
type OrderKey struct {
	Col  string `json:"col"`
	Desc bool   `json:"desc,omitempty"`
}

// QuerySpec is a generated query in structured form. It is the unit the
// shrinker minimizes and the repro corpus serializes: the SQL text, the
// ground truth, and the plan-expectation model are all derived from it.
type QuerySpec struct {
	// IDLo/IDHi bound Fact.Id; with web joins present they keep the
	// number of external calls per query small.
	IDLo  int64  `json:"id_lo"`
	IDHi  int64  `json:"id_hi"`
	Joins []Join `json:"joins,omitempty"`
	// Filters are evaluated conjunctively with the join predicates.
	Filters  []Filter   `json:"filters,omitempty"`
	Distinct bool       `json:"distinct,omitempty"`
	Proj     []string   `json:"proj"`
	OrderBy  []OrderKey `json:"order_by,omitempty"`
	// Note records how the spec entered the corpus (shrinker provenance).
	Note string `json:"note,omitempty"`
}

// vtabName returns the SQL virtual-table name for a web join.
func (j *Join) vtabName() string {
	base := "WebCount"
	if j.Kind == JoinWebPages {
		base = "WebPages"
	}
	return base + "_" + j.Engine
}

// SQL renders the spec as the query text the differential harness parses
// and plans. The FROM order is the join order (Redbase fixes join order
// by FROM position), and web input bindings are written input-column
// first (`w.T1 = expr`) as the planner's binding analysis expects.
func (s *QuerySpec) SQL() string {
	var from []string
	from = append(from, "Fact f")
	conj := []string{
		fmt.Sprintf("f.Id >= %d", s.IDLo),
		fmt.Sprintf("f.Id <= %d", s.IDHi),
	}
	for i := range s.Joins {
		j := &s.Joins[i]
		switch j.Kind {
		case JoinState:
			from = append(from, "DimState "+j.Alias)
			conj = append(conj, fmt.Sprintf("f.Sk = %s.Sk", j.Alias))
		case JoinTerm:
			from = append(from, "DimTerm "+j.Alias)
			conj = append(conj, fmt.Sprintf("f.Tk = %s.Tk", j.Alias))
		case JoinMovie:
			from = append(from, "DimMovie "+j.Alias)
			conj = append(conj, fmt.Sprintf("f.Mk = %s.Mk", j.Alias))
		case JoinWebCount, JoinWebPages:
			from = append(from, j.vtabName()+" "+j.Alias)
			conj = append(conj, fmt.Sprintf("%s.T1 = %s", j.Alias, j.BindCol))
			if j.T2Const != "" {
				conj = append(conj, fmt.Sprintf("%s.T2 = '%s'", j.Alias, j.T2Const))
			}
			if j.Kind == JoinWebPages {
				conj = append(conj, fmt.Sprintf("%s.Rank <= %d", j.Alias, j.RankLimit))
			}
		}
	}
	for i := range s.Filters {
		conj = append(conj, s.Filters[i].SQL())
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	b.WriteString(strings.Join(s.Proj, ", "))
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(from, ", "))
	b.WriteString(" WHERE ")
	b.WriteString(strings.Join(conj, " AND "))
	if len(s.OrderBy) > 0 {
		keys := make([]string, len(s.OrderBy))
		for i, k := range s.OrderBy {
			keys[i] = k.Col
			if k.Desc {
				keys[i] += " DESC"
			}
		}
		b.WriteString(" ORDER BY ")
		b.WriteString(strings.Join(keys, ", "))
	}
	return b.String()
}

// SQL renders one filter conjunct.
func (f *Filter) SQL() string {
	switch f.Op {
	case "isnull":
		return fmt.Sprintf("%s IS NULL", f.Col)
	case "isnotnull":
		return fmt.Sprintf("%s IS NOT NULL", f.Col)
	}
	rhs := f.RCol
	if rhs == "" {
		if f.IntVal != nil {
			rhs = fmt.Sprintf("%d", *f.IntVal)
		} else if f.StrVal != nil {
			rhs = "'" + strings.ReplaceAll(*f.StrVal, "'", "''") + "'"
		} else {
			rhs = "NULL"
		}
	}
	return fmt.Sprintf("%s %s %s", f.Col, f.Op, rhs)
}

// aliasOf returns the qualifier of a qualified column ("s.Cap" → "s").
func aliasOf(col string) string {
	if i := strings.IndexByte(col, '.'); i >= 0 {
		return col[:i]
	}
	return col
}

// refsAlias reports whether the filter references the given table alias.
func (f *Filter) refsAlias(alias string) bool {
	return aliasOf(f.Col) == alias || (f.RCol != "" && aliasOf(f.RCol) == alias)
}
