// Package fuzzqe is a ground-truth plan-equivalence fuzzer for the WSQ
// query engine, after the TQS recipe: a seeded generator random-walks a
// schema graph over websim's deterministic corpus to emit multi-join WSQ
// queries, an offline evaluator computes the exact result from the raw
// data (websim is seeded, so web-call results are computable without the
// engine), and a differential harness executes each query under every
// plan regime — sync nested-loop, async percolated/consolidated, and
// hash-join/batch at several batch sizes — asserting that all of them
// reproduce the ground truth and that ReqSync settlement counts match
// what the plan predicts.
//
// A coverage tracker buckets queries by rewrite-shape signature and
// biases generation toward unvisited plan shapes (KQE-lite), and a
// shrinker minimizes any diverging query before it is checked into the
// regression corpus under testdata/.
package fuzzqe

import (
	"fmt"
	"os"

	"repro/internal/async"
	"repro/internal/catalog"
	"repro/internal/datasets"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/types"
	"repro/internal/vtab"
	"repro/internal/websim"
)

// NumFactRows is the size of the conceptual wide table the stored schema
// normalizes. Small enough that a full differential run is cheap, large
// enough that joins produce interesting multiplicities.
const NumFactRows = 160

// WideRow is one row of the conceptual wide table behind the normalized
// schema. The ground-truth evaluator works directly over these rows, so
// join results are exact by construction: every dimension key is unique
// in its dimension table, which makes each dimension join a 0-or-1
// extension and keeps multiset multiplicities computable without bitmap
// approximation.
type WideRow struct {
	ID int64
	Sk types.Value // state key; NULL-bearing
	Tk types.Value // term key; never NULL
	Mk types.Value // movie key; NULL-bearing
	V  int64
}

// Env is a self-contained fuzzing environment: a catalog holding the
// normalized tables, the websim corpus with both simulated engines, a
// planner, and the request pump the async variants share. It also keeps
// the wide rows and dimension maps the ground-truth evaluator reads.
type Env struct {
	Cat     *catalog.Catalog
	Engines *search.Registry
	VTabs   *vtab.Registry
	Planner *plan.Planner
	Pump    *async.Pump

	Wide []WideRow
	// Dimension attribute maps, keyed by the (unique) dimension key.
	StateDim map[string]struct {
		Cap string
		Pop int64
	}
	TermDim  map[string]int64 // Grp
	MovieDim map[string]int64 // Len

	// FactSks / FactTks / FactMks are the key pools facts draw from;
	// FactSks and FactMks include keys dangling from their dimension.
	FactSks []string
	FactTks []string
	FactMks []string

	dir    string
	rmOnCl bool
	// webMemo caches ground-truth virtual-table calls by the same key the
	// engine's result cache would use; websim is deterministic, so one
	// call per distinct argument vector defines the truth.
	webMemo map[string][]types.Tuple
}

// NewEnv builds an environment in dir (a throwaway directory; created if
// missing). The data layout is fully determined by seed.
func NewEnv(dir string, seed int64) (*Env, error) {
	cat, err := catalog.Open(dir, 0)
	if err != nil {
		return nil, err
	}
	corpus := websim.Default()
	engines := search.NewRegistry()
	engines.Register(websim.NewAltaVista(corpus), "AV")
	engines.Register(websim.NewGoogle(corpus), "G")
	vt := vtab.NewRegistry(engines)
	e := &Env{
		Cat:     cat,
		Engines: engines,
		VTabs:   vt,
		Planner: plan.New(cat, vt),
		Pump:    async.NewPump(0, 0, nil),
		dir:     dir,
	}
	if err := e.buildData(seed); err != nil {
		e.Close()
		return nil, err
	}
	return e, nil
}

// NewTempEnv is NewEnv over a fresh temporary directory, removed on Close.
func NewTempEnv(seed int64) (*Env, error) {
	dir, err := os.MkdirTemp("", "fuzzqe-*")
	if err != nil {
		return nil, err
	}
	e, err := NewEnv(dir, seed)
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	e.rmOnCl = true
	return e, nil
}

// Close releases the pump and catalog (and the temp directory when the
// environment owns it).
func (e *Env) Close() error {
	e.Pump.Close()
	err := e.Cat.Close()
	if e.rmOnCl {
		os.RemoveAll(e.dir)
	}
	return err
}

// buildData materializes the wide table and its normalization:
//
//	Fact(Id, Sk, Tk, Mk, V)       — one row per wide row; Sk, Mk NULL-bearing
//	DimState(Sk, Cap, Pop)        — unique keys; attrs from datasets.States
//	DimTerm(Tk, Grp)              — unique keys
//	DimMovie(Mk, Len)             — unique keys
//
// Fact keys include values dangling from their dimension, and each
// dimension holds keys no fact references, so inner joins genuinely
// filter in both directions. Term keys come from the Table-1 template
// constants and state keys from the state table, so web joins over them
// hit entities the websim corpus actually correlates.
func (e *Env) buildData(seed int64) error {
	rng := search.NewRand(seed)

	// Key pools. The first pool entries are backed by the dimension; the
	// trailing ones dangle (facts reference them, the dimension lacks them).
	dimStates := make([]string, 0, 12)
	for i := 0; i < 12; i++ {
		dimStates = append(dimStates, datasets.States[i*4].Name)
	}
	e.FactSks = append(append([]string{}, dimStates[:10]...), datasets.States[1].Name, datasets.States[3].Name)
	dimTerms := datasets.TemplateConstants[:12]
	e.FactTks = append(append([]string{}, dimTerms[:10]...), datasets.TemplateConstants[12], datasets.TemplateConstants[13])
	dimMovies := datasets.Movies[:10]
	e.FactMks = append(append([]string{}, dimMovies[:8]...), datasets.Movies[10], datasets.Movies[11])

	e.StateDim = make(map[string]struct {
		Cap string
		Pop int64
	})
	for _, name := range dimStates {
		st, ok := datasets.StateByName(name)
		if !ok {
			return fmt.Errorf("fuzzqe: unknown state %q", name)
		}
		e.StateDim[name] = struct {
			Cap string
			Pop int64
		}{Cap: st.Capital, Pop: st.Population}
	}
	e.TermDim = make(map[string]int64)
	for i, t := range dimTerms {
		e.TermDim[t] = int64(i % 3)
	}
	e.MovieDim = make(map[string]int64)
	for i, m := range dimMovies {
		e.MovieDim[m] = int64(80 + 7*i)
	}

	// Wide rows: ~20% NULL state keys, ~30% NULL movie keys.
	e.Wide = make([]WideRow, NumFactRows)
	for i := range e.Wide {
		w := WideRow{ID: int64(i), V: int64(rng.Intn(10))}
		if rng.Float64() < 0.2 {
			w.Sk = types.Null()
		} else {
			w.Sk = types.Str(e.FactSks[rng.Intn(len(e.FactSks))])
		}
		w.Tk = types.Str(e.FactTks[rng.Intn(len(e.FactTks))])
		if rng.Float64() < 0.3 {
			w.Mk = types.Null()
		} else {
			w.Mk = types.Str(e.FactMks[rng.Intn(len(e.FactMks))])
		}
		e.Wide[i] = w
	}

	// Store the normalization.
	if err := e.createAndFill("Fact", []catalog.ColumnDef{
		{Name: "Id", Type: schema.TInt},
		{Name: "Sk", Type: schema.TString},
		{Name: "Tk", Type: schema.TString},
		{Name: "Mk", Type: schema.TString},
		{Name: "V", Type: schema.TInt},
	}, func(emit func(types.Tuple) error) error {
		for _, w := range e.Wide {
			if err := emit(types.Tuple{types.Int(w.ID), w.Sk, w.Tk, w.Mk, types.Int(w.V)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := e.createAndFill("DimState", []catalog.ColumnDef{
		{Name: "Sk", Type: schema.TString},
		{Name: "Cap", Type: schema.TString},
		{Name: "Pop", Type: schema.TInt},
	}, func(emit func(types.Tuple) error) error {
		for _, name := range dimStates {
			d := e.StateDim[name]
			if err := emit(types.Tuple{types.Str(name), types.Str(d.Cap), types.Int(d.Pop)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := e.createAndFill("DimTerm", []catalog.ColumnDef{
		{Name: "Tk", Type: schema.TString},
		{Name: "Grp", Type: schema.TInt},
	}, func(emit func(types.Tuple) error) error {
		for _, t := range dimTerms {
			if err := emit(types.Tuple{types.Str(t), types.Int(e.TermDim[t])}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	return e.createAndFill("DimMovie", []catalog.ColumnDef{
		{Name: "Mk", Type: schema.TString},
		{Name: "Len", Type: schema.TInt},
	}, func(emit func(types.Tuple) error) error {
		for _, m := range dimMovies {
			if err := emit(types.Tuple{types.Str(m), types.Int(e.MovieDim[m])}); err != nil {
				return err
			}
		}
		return nil
	})
}

func (e *Env) createAndFill(name string, cols []catalog.ColumnDef, fill func(emit func(types.Tuple) error) error) error {
	t, err := e.Cat.Create(name, cols)
	if err != nil {
		return err
	}
	return fill(func(row types.Tuple) error {
		_, err := t.Insert(row)
		return err
	})
}
