package fuzzqe

// Shrink minimizes a diverging spec: it repeatedly tries structural
// reductions — dropping joins (with cascade over anything referencing
// them), dropping filters, clearing DISTINCT/ORDER BY/T2 bindings,
// shrinking rank limits and the Id range — keeping a reduction whenever
// keep reports the divergence still reproduces, until a fixpoint. The
// result is what gets written to the repro corpus.
func Shrink(spec *QuerySpec, keep func(*QuerySpec) bool) *QuerySpec {
	cur := spec.Clone()
	for {
		reduced := false
		// Drop joins, last first (later joins depend on earlier columns,
		// never the reverse).
		for i := len(cur.Joins) - 1; i >= 0; i-- {
			if cand := dropJoin(cur, i); keep(cand) {
				cur, reduced = cand, true
			}
		}
		for i := len(cur.Filters) - 1; i >= 0; i-- {
			cand := cur.Clone()
			cand.Filters = append(cand.Filters[:i], cand.Filters[i+1:]...)
			if keep(cand) {
				cur, reduced = cand, true
			}
		}
		if len(cur.OrderBy) > 0 {
			cand := cur.Clone()
			cand.OrderBy = nil
			if keep(cand) {
				cur, reduced = cand, true
			}
		}
		if cur.Distinct {
			cand := cur.Clone()
			cand.Distinct = false
			if keep(cand) {
				cur, reduced = cand, true
			}
		}
		for i := range cur.Joins {
			if cur.Joins[i].T2Const != "" {
				cand := cur.Clone()
				cand.Joins[i].T2Const = ""
				if keep(cand) {
					cur, reduced = cand, true
				}
			}
			if cur.Joins[i].Kind == JoinWebPages && cur.Joins[i].RankLimit > 1 {
				cand := cur.Clone()
				cand.Joins[i].RankLimit = 1
				if keep(cand) {
					cur, reduced = cand, true
				}
			}
		}
		// Halve the Id range while the divergence survives.
		for cur.IDHi > cur.IDLo {
			cand := cur.Clone()
			cand.IDHi = cand.IDLo + (cand.IDHi-cand.IDLo)/2
			if !keep(cand) {
				break
			}
			cur, reduced = cand, true
		}
		// Shrink the projection.
		for i := len(cur.Proj) - 1; i >= 0 && len(cur.Proj) > 1; i-- {
			cand := cur.Clone()
			cand.Proj = append(cand.Proj[:i], cand.Proj[i+1:]...)
			cand.OrderBy = pruneOrderBy(cand.OrderBy, cand.Proj)
			if keep(cand) {
				cur, reduced = cand, true
			}
		}
		if !reduced {
			return cur
		}
	}
}

// dropJoin removes join i and cascades: web joins bound to a removed
// alias's columns go too, and filters, projections, and order keys
// referencing any removed alias are pruned. An emptied projection falls
// back to f.Id.
func dropJoin(spec *QuerySpec, i int) *QuerySpec {
	cand := spec.Clone()
	removed := map[string]bool{cand.Joins[i].Alias: true}
	cand.Joins = append(cand.Joins[:i], cand.Joins[i+1:]...)
	for changed := true; changed; {
		changed = false
		for k := 0; k < len(cand.Joins); k++ {
			j := &cand.Joins[k]
			if j.IsWeb() && removed[aliasOf(j.BindCol)] {
				removed[j.Alias] = true
				cand.Joins = append(cand.Joins[:k], cand.Joins[k+1:]...)
				changed = true
				k--
			}
		}
	}
	var filters []Filter
	for _, f := range cand.Filters {
		hit := false
		for a := range removed {
			if f.refsAlias(a) {
				hit = true
				break
			}
		}
		if !hit {
			filters = append(filters, f)
		}
	}
	cand.Filters = filters
	var proj []string
	for _, p := range cand.Proj {
		if !removed[aliasOf(p)] {
			proj = append(proj, p)
		}
	}
	if len(proj) == 0 {
		proj = []string{"f.Id"}
	}
	cand.Proj = proj
	cand.OrderBy = pruneOrderBy(cand.OrderBy, proj)
	return cand
}

// pruneOrderBy keeps only order keys still present in the projection.
func pruneOrderBy(keys []OrderKey, proj []string) []OrderKey {
	var out []OrderKey
	for _, k := range keys {
		for _, p := range proj {
			if p == k.Col {
				out = append(out, k)
				break
			}
		}
	}
	return out
}

// Clone deep-copies a spec.
func (s *QuerySpec) Clone() *QuerySpec {
	c := *s
	c.Joins = append([]Join(nil), s.Joins...)
	c.Filters = append([]Filter(nil), s.Filters...)
	c.Proj = append([]string(nil), s.Proj...)
	c.OrderBy = append([]OrderKey(nil), s.OrderBy...)
	return &c
}
