package fuzzqe

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/types"
	"repro/internal/vtab"
)

// Truth is the offline evaluation of a QuerySpec: the exact result
// multiset plus the call and settlement counts each plan regime is
// expected to exhibit.
//
// SyncCalls models the synchronous plan, where every filter runs at the
// earliest point its columns exist (the planner consumes each conjunct
// at the first FROM entry that can evaluate it) and each web join
// expands its results inline.
//
// AsyncCalls and AsyncSettled* model the percolated/consolidated plan
// (see evalAsync for the full dataflow):
//   - filters referencing a web output column hoist above the ReqSync
//     cluster they clash with, so they stop dropping rows below it;
//   - web results patch and expand tuples only at a ReqSync, so a later
//     web join sees one pre-expansion tuple per outer row — unless some
//     dependent join binds an earlier join's URL, which pins the whole
//     ReqSync cluster below it and settles everything pending there;
//   - a call settles only if some tuple carrying its placeholder
//     reaches a ReqSync; stored-side joins and filters that eliminate
//     every carrier below the settlement point leave the call
//     issued-but-discarded, so AsyncSettled* <= AsyncCalls.
//
// Settlement differs between the nested-loop and hash plans in exactly
// one shape: when the planner turns the final dimension join of a
// DISTINCT query into a hash semi-join, that probe clashes
// unconditionally and ends up above the ReqSync, so its dropped rows
// still settle — while the nested-loop plan keeps the same join below
// the ReqSync. Hence two predictions.
type Truth struct {
	Multiset         map[string]int
	SyncCalls        int64
	AsyncCalls       int64
	AsyncSettledNLJ  int64
	AsyncSettledHash int64
}

// truthRow is one partial join result: qualified column name → value.
type truthRow map[string]types.Value

// Truth evaluates the spec over the wide rows and the (memoized) websim
// corpus, without the query engine.
func (e *Env) Truth(spec *QuerySpec) (*Truth, error) {
	syncRows, syncCalls, err := e.evalSync(spec)
	if err != nil {
		return nil, err
	}
	asyncCalls, settledNLJ, err := e.evalAsync(spec, false)
	if err != nil {
		return nil, err
	}
	_, settledHash, err := e.evalAsync(spec, true)
	if err != nil {
		return nil, err
	}
	ms := make(map[string]int)
	for _, r := range syncRows {
		vals := make([]types.Value, len(spec.Proj))
		for i, col := range spec.Proj {
			v, ok := r[col]
			if !ok {
				return nil, fmt.Errorf("truth: projection column %s not produced", col)
			}
			vals[i] = v
		}
		key := EncodeRow(vals)
		if spec.Distinct {
			ms[key] = 1
		} else {
			ms[key]++
		}
	}
	return &Truth{
		Multiset:         ms,
		SyncCalls:        syncCalls,
		AsyncCalls:       asyncCalls,
		AsyncSettledNLJ:  settledNLJ,
		AsyncSettledHash: settledHash,
	}, nil
}

// evalSync folds the joins left to right over the wide rows, applying
// each filter at the earliest point its columns are available (the
// planner consumes every conjunct at the first FROM entry that can
// evaluate it) and expanding web results inline. It returns the
// surviving rows and the number of external calls issued — one per row
// reaching each web join; the harness runs without a result cache, so
// duplicate argument vectors are not coalesced.
func (e *Env) evalSync(spec *QuerySpec) ([]truthRow, int64, error) {
	joined := map[string]bool{"f": true}
	applied := make([]bool, len(spec.Filters))
	rows := e.seedRows(spec)

	applyReady := func() error {
		for i := range spec.Filters {
			f := &spec.Filters[i]
			if applied[i] {
				continue
			}
			if !joined[aliasOf(f.Col)] || (f.RCol != "" && !joined[aliasOf(f.RCol)]) {
				continue
			}
			applied[i] = true
			kept := rows[:0]
			for _, r := range rows {
				ok, err := evalFilter(f, r)
				if err != nil {
					return err
				}
				if ok {
					kept = append(kept, r)
				}
			}
			rows = kept
		}
		return nil
	}

	var calls int64
	if err := applyReady(); err != nil {
		return nil, 0, err
	}
	for i := range spec.Joins {
		j := &spec.Joins[i]
		var err error
		if j.IsWeb() {
			rows, calls, err = e.extendWeb(rows, j, calls)
			if err != nil {
				return nil, 0, err
			}
		} else {
			keyCol, ext, err := e.dimExt(j)
			if err != nil {
				return nil, 0, err
			}
			out := rows[:0]
			for _, r := range rows {
				k := r[keyCol]
				if k.IsNull() {
					continue
				}
				cols, ok := ext[k.AsString()]
				if !ok {
					continue
				}
				nr := cloneRow(r)
				for c, v := range cols {
					nr[c] = v
				}
				out = append(out, nr)
			}
			rows = out
		}
		joined[j.Alias] = true
		if err := applyReady(); err != nil {
			return nil, 0, err
		}
	}
	return rows, calls, nil
}

// seedRows scans the fact rows in the spec's Id range.
func (e *Env) seedRows(spec *QuerySpec) []truthRow {
	var rows []truthRow
	for _, w := range e.Wide {
		if w.ID < spec.IDLo || w.ID > spec.IDHi {
			continue
		}
		rows = append(rows, truthRow{
			"f.Id": types.Int(w.ID), "f.Sk": w.Sk, "f.Tk": w.Tk,
			"f.Mk": w.Mk, "f.V": types.Int(w.V),
		})
	}
	return rows
}

// dimExt returns the fact-side key column and, per dimension key, the
// columns a dimension join attaches. NULL keys and keys dangling from
// the dimension drop the row, exactly as the inner equi-join does.
func (e *Env) dimExt(j *Join) (string, map[string]map[string]types.Value, error) {
	ext := make(map[string]map[string]types.Value)
	switch j.Kind {
	case JoinState:
		for k, d := range e.StateDim {
			ext[k] = map[string]types.Value{
				j.Alias + ".Sk":  types.Str(k),
				j.Alias + ".Cap": types.Str(d.Cap),
				j.Alias + ".Pop": types.Int(d.Pop),
			}
		}
		return "f.Sk", ext, nil
	case JoinTerm:
		for k, g := range e.TermDim {
			ext[k] = map[string]types.Value{
				j.Alias + ".Tk":  types.Str(k),
				j.Alias + ".Grp": types.Int(g),
			}
		}
		return "f.Tk", ext, nil
	case JoinMovie:
		for k, l := range e.MovieDim {
			ext[k] = map[string]types.Value{
				j.Alias + ".Mk":  types.Str(k),
				j.Alias + ".Len": types.Int(l),
			}
		}
		return "f.Mk", ext, nil
	default:
		return "", nil, fmt.Errorf("truth: unknown dimension join kind %q", j.Kind)
	}
}

// pendingCall is one issued-but-unsettled external call riding on a
// tuple: the web join that issued it and the result rows that will patch
// or expand the tuple when a ReqSync settles it.
type pendingCall struct {
	id    int64
	alias string
	kind  string
	rows  []types.Tuple
}

// asyncRow pairs a partial join result with its pending calls. Rows
// copied below a settlement point (by a cross product) share pending
// call ids, mirroring Section 4.4's proliferated references.
type asyncRow struct {
	vals    truthRow
	pending []pendingCall
}

// evalAsync simulates the dataflow of the percolated/consolidated plan
// to predict its external-call count and total ReqSync settlements. The
// simulation mirrors what the rewrite actually produces:
//
//   - Every ReqSync percolates to the top of the plan (just below the
//     first clashing Project/Distinct/semi-join) unless a dependent
//     join binds its URL output — then it rests pinned directly below
//     that join — or it runs into an already-pinned cluster on the way
//     up and stacks onto it. A ReqSync registers a tuple under every
//     pending call the tuple carries, so the lowest ReqSync of a
//     cluster settles everything below it: web results patch and
//     expand tuples only at these settlement sites.
//   - A predicate referencing web outputs hoists with each ReqSync it
//     clashes with and comes to rest directly above the highest-resting
//     one — above the top cluster normally, at a pinned cluster when
//     every referenced ReqSync rests there, where it drops rows before
//     the pinning join issues its calls. (With three or more web joins
//     a mixed-rest predicate can land between two pins; the generator
//     caps queries at two web joins, where the max-rest rule is exact.)
//   - A dimension join whose predicate set picked up a web-referencing
//     conjunct is rewritten join→σ(×): the join runs as a cross product
//     at its original position and its whole predicate — the equi key
//     included — hoists as one unit.
//   - With hashVariant set, a DISTINCT query whose shape satisfies the
//     planner's semi-join rewrite runs its final dimension join above
//     the ReqSync cluster, so that probe no longer drops carriers
//     before settlement.
//
// A call settles only if some tuple carrying it survives to a
// settlement site; the returned settled count is the number of distinct
// such calls.
func (e *Env) evalAsync(spec *QuerySpec, hashVariant bool) (int64, int64, error) {
	n := len(spec.Joins)
	pos := map[string]int{"f": 0}
	webAlias := make(map[string]bool)
	for i := range spec.Joins {
		pos[spec.Joins[i].Alias] = i + 1
		if spec.Joins[i].IsWeb() {
			webAlias[spec.Joins[i].Alias] = true
		}
	}

	// Settlement sites. restAt[j] is the join index whose processing
	// settles web join j's calls (n = the top cluster). Ascending over
	// web joins: a ReqSync rests at the first URL-binding dependent join
	// above it or the first already-pinned cluster it runs into,
	// whichever is lower.
	restAt := make(map[int]int)
	var pinSites []int
	for j := range spec.Joins {
		if !spec.Joins[j].IsWeb() {
			continue
		}
		own := n
		for k := j + 1; k < n; k++ {
			if spec.Joins[k].IsWeb() && spec.Joins[k].BindCol == spec.Joins[j].Alias+".URL" {
				own = k
				break
			}
		}
		stack := n
		for _, p := range pinSites {
			if p > j && p < stack {
				stack = p
			}
		}
		r := own
		if stack < r {
			r = stack
		}
		restAt[j] = r
		if r == own && own < n {
			seen := false
			for _, p := range pinSites {
				if p == own {
					seen = true
				}
			}
			if !seen {
				pinSites = append(pinSites, own)
			}
		}
	}
	isPin := make([]bool, n)
	for _, p := range pinSites {
		isPin[p] = true
	}

	// Predicate units: the planner ANDs everything it consumes at one
	// FROM entry into a single filter or join predicate, and the rewrite
	// hoists that unit whole. unitSite[p] is the join index before which
	// entry p's unit applies (n = above the top cluster, -1 = not
	// deferred: it runs inside the entry itself).
	filterPos := make([]int, len(spec.Filters))
	for i := range spec.Filters {
		f := &spec.Filters[i]
		filterPos[i] = pos[aliasOf(f.Col)]
		if f.RCol != "" {
			if p := pos[aliasOf(f.RCol)]; p > filterPos[i] {
				filterPos[i] = p
			}
		}
	}
	unitSite := make([]int, n+1)
	cross := make([]bool, n)
	for p := 0; p <= n; p++ {
		unitSite[p] = -1
		site := -1
		for i := range spec.Filters {
			if filterPos[i] != p {
				continue
			}
			for _, col := range []string{spec.Filters[i].Col, spec.Filters[i].RCol} {
				if col == "" || !webAlias[aliasOf(col)] {
					continue
				}
				if r := restAt[pos[aliasOf(col)]-1]; r > site {
					site = r
				}
			}
		}
		// Deferred only when the settlement site is at or above the
		// entry. A unit whose referenced web joins all settle below it —
		// pinned there by an earlier URL binding — sees real values, never
		// clashes, and stays where the planner put it.
		if site >= p {
			unitSite[p] = site
			if p > 0 && !spec.Joins[p-1].IsWeb() {
				cross[p-1] = true
			}
		}
	}

	semiIdx := -1
	if hashVariant && semiEligible(spec) {
		semiIdx = n - 1
	}

	rows := make([]asyncRow, 0, NumFactRows)
	for _, v := range e.seedRows(spec) {
		rows = append(rows, asyncRow{vals: v})
	}
	var calls int64
	var nextID int64
	settledIDs := make(map[int64]bool)

	// filterRows drops rows failing one deferred or plain filter.
	filterRows := func(f *Filter) error {
		kept := rows[:0]
		for _, r := range rows {
			ok, err := evalFilter(f, r.vals)
			if err != nil {
				return err
			}
			if ok {
				kept = append(kept, r)
			}
		}
		rows = kept
		return nil
	}

	// applyUnit runs entry p's predicate unit: its filters plus, for a
	// crossed entry, the deferred equi key (the crossed dimension row
	// matches the fact key).
	applyUnit := func(p int) error {
		for i := range spec.Filters {
			if filterPos[i] != p {
				continue
			}
			if err := filterRows(&spec.Filters[i]); err != nil {
				return err
			}
		}
		if p > 0 && cross[p-1] {
			keyCol, ext, err := e.dimExt(&spec.Joins[p-1])
			if err != nil {
				return err
			}
			kept := rows[:0]
			for _, r := range rows {
				kv := r.vals[keyCol]
				if kv.IsNull() {
					continue
				}
				cols, ok := ext[kv.AsString()]
				if !ok {
					continue
				}
				match := true
				for c, v := range cols {
					if r.vals[c].Compare(v) != 0 {
						match = false
						break
					}
				}
				if match {
					kept = append(kept, r)
				}
			}
			rows = kept
		}
		return nil
	}

	// settleCluster models the lowest ReqSync of a cluster: every pending
	// call on a surviving row settles; WebCount patches its Count,
	// WebPages expands the row per result page (cancelling it on zero).
	settleCluster := func() {
		var out []asyncRow
		for _, r := range rows {
			expanded := []truthRow{r.vals}
			for _, p := range r.pending {
				settledIDs[p.id] = true
				var next []truthRow
				for _, v := range expanded {
					for _, res := range p.rows {
						nv := cloneRow(v)
						if p.kind == JoinWebCount {
							nv[p.alias+".Count"] = res[0]
						} else {
							nv[p.alias+".URL"] = res[0]
							nv[p.alias+".Rank"] = res[1]
							nv[p.alias+".Date"] = res[2]
						}
						next = append(next, nv)
					}
				}
				expanded = next
			}
			for _, v := range expanded {
				out = append(out, asyncRow{vals: v})
			}
		}
		rows = out
	}

	if unitSite[0] >= 0 {
		return 0, 0, fmt.Errorf("truth: fact-only filter cannot reference a web alias")
	}
	if err := applyUnit(0); err != nil {
		return 0, 0, err
	}
	for k := range spec.Joins {
		j := &spec.Joins[k]
		if k == semiIdx {
			break // the semi-join probe sits above every ReqSync
		}
		if isPin[k] {
			// A pinned cluster sits directly below this dependent join:
			// everything pending settles, then the predicate units resting
			// on the cluster drop rows — all before this join's calls.
			settleCluster()
			for p := 0; p <= k; p++ {
				if unitSite[p] == k {
					if err := applyUnit(p); err != nil {
						return 0, 0, err
					}
				}
			}
		}
		if j.IsWeb() {
			def, err := e.VTabs.Resolve(j.vtabName())
			if err != nil {
				return 0, 0, err
			}
			for ri := range rows {
				bind := rows[ri].vals[j.BindCol]
				if bind.IsNull() {
					return 0, 0, fmt.Errorf("truth: %s bound to NULL %s (generator must only bind non-NULL columns)", j.Alias, j.BindCol)
				}
				nextID++
				calls++
				res, err := e.webCall(def, j, bind.AsString())
				if err != nil {
					return 0, 0, err
				}
				rows[ri].pending = append(rows[ri].pending, pendingCall{
					id: nextID, alias: j.Alias, kind: j.Kind, rows: res,
				})
			}
		} else if cross[k] {
			// join→σ(×): attach every dimension row; the predicate unit
			// applies at the settlement site it hoisted to.
			_, ext, err := e.dimExt(j)
			if err != nil {
				return 0, 0, err
			}
			keys := make([]string, 0, len(ext))
			for dk := range ext {
				keys = append(keys, dk)
			}
			sort.Strings(keys)
			var out []asyncRow
			for _, r := range rows {
				for _, dk := range keys {
					nr := asyncRow{
						vals:    cloneRow(r.vals),
						pending: append([]pendingCall(nil), r.pending...),
					}
					for c, v := range ext[dk] {
						nr.vals[c] = v
					}
					out = append(out, nr)
				}
			}
			rows = out
		} else {
			keyCol, ext, err := e.dimExt(j)
			if err != nil {
				return 0, 0, err
			}
			out := rows[:0]
			for _, r := range rows {
				kv := r.vals[keyCol]
				if kv.IsNull() {
					continue
				}
				cols, ok := ext[kv.AsString()]
				if !ok {
					continue
				}
				nr := asyncRow{vals: cloneRow(r.vals), pending: r.pending}
				for c, v := range cols {
					nr.vals[c] = v
				}
				out = append(out, nr)
			}
			rows = out
		}
		if unitSite[k+1] < 0 {
			if err := applyUnit(k + 1); err != nil {
				return 0, 0, err
			}
		}
	}
	// Top settlement site: every call still carried by a surviving row
	// settles; nothing above it can change the totals.
	for _, r := range rows {
		for _, p := range r.pending {
			settledIDs[p.id] = true
		}
	}
	return calls, int64(len(settledIDs)), nil
}

// semiEligible mirrors the planner's trySemiJoin precondition over the
// spec grammar: DISTINCT, a final dimension join whose predicate set is
// pure cross-input equalities (so the hash join has no residual), and a
// projection referencing nothing from that dimension.
func semiEligible(spec *QuerySpec) bool {
	n := len(spec.Joins)
	if !spec.Distinct || n == 0 || spec.Joins[n-1].IsWeb() {
		return false
	}
	last := spec.Joins[n-1].Alias
	for _, p := range spec.Proj {
		if aliasOf(p) == last {
			return false
		}
	}
	for i := range spec.Filters {
		f := &spec.Filters[i]
		if f.refsAlias(last) && !(f.Op == "=" && f.RCol != "") {
			return false
		}
	}
	return true
}

// extendWeb performs one dependent web join: one external call per
// incoming row, expanding each row by the call's result rows (WebCount
// always yields exactly one; WebPages yields 0..RankLimit rows, dropping
// the row on 0 as the join does).
func (e *Env) extendWeb(rows []truthRow, j *Join, calls int64) ([]truthRow, int64, error) {
	def, err := e.VTabs.Resolve(j.vtabName())
	if err != nil {
		return nil, 0, err
	}
	var out []truthRow
	for _, r := range rows {
		bind := r[j.BindCol]
		if bind.IsNull() {
			return nil, 0, fmt.Errorf("truth: %s bound to NULL %s (generator must only bind non-NULL columns)", j.Alias, j.BindCol)
		}
		calls++
		results, err := e.webCall(def, j, bind.AsString())
		if err != nil {
			return nil, 0, err
		}
		for _, res := range results {
			nr := cloneRow(r)
			switch j.Kind {
			case JoinWebCount:
				nr[j.Alias+".Count"] = res[0]
			default:
				nr[j.Alias+".URL"] = res[0]
				nr[j.Alias+".Rank"] = res[1]
				nr[j.Alias+".Date"] = res[2]
			}
			out = append(out, nr)
		}
	}
	return out, calls, nil
}

// webCall issues (or replays from the memo) one virtual-table call with
// the same argument vector the planner constructs: the default SearchExp
// over the bound term indices, T1 = the binding value, T2 = the optional
// constant, remaining terms NULL, and the rank limit for WebPages.
func (e *Env) webCall(def *vtab.Def, j *Join, t1 string) ([]types.Tuple, error) {
	src := vtab.NewSource(def)
	boundIdx := []int{1}
	if j.T2Const != "" {
		boundIdx = append(boundIdx, 2)
	}
	args := make([]types.Value, 0, def.NumInputs()+1)
	args = append(args, types.Str(def.DefaultSearchExp(boundIdx)))
	args = append(args, types.Str(t1))
	if j.T2Const != "" {
		args = append(args, types.Str(j.T2Const))
	} else {
		args = append(args, types.Null())
	}
	for i := 3; i <= vtab.MaxTerms; i++ {
		args = append(args, types.Null())
	}
	if j.Kind == JoinWebPages {
		args = append(args, types.Int(int64(j.RankLimit)))
	}
	key := src.CacheKey(args)
	if e.webMemo == nil {
		e.webMemo = make(map[string][]types.Tuple)
	}
	if rows, ok := e.webMemo[key]; ok {
		return rows, nil
	}
	rows, err := src.Call(args)
	if err != nil {
		return nil, err
	}
	e.webMemo[key] = rows
	return rows, nil
}

// evalFilter evaluates one restricted conjunct over a row with SQL
// three-valued semantics: a NULL operand in a comparison drops the row.
func evalFilter(f *Filter, r truthRow) (bool, error) {
	lv, ok := r[f.Col]
	if !ok {
		return false, fmt.Errorf("truth: filter column %s not available", f.Col)
	}
	switch f.Op {
	case "isnull":
		return lv.IsNull(), nil
	case "isnotnull":
		return !lv.IsNull(), nil
	}
	var rv types.Value
	switch {
	case f.RCol != "":
		rv, ok = r[f.RCol]
		if !ok {
			return false, fmt.Errorf("truth: filter column %s not available", f.RCol)
		}
	case f.IntVal != nil:
		rv = types.Int(*f.IntVal)
	case f.StrVal != nil:
		rv = types.Str(*f.StrVal)
	default:
		rv = types.Null()
	}
	if lv.IsNull() || rv.IsNull() {
		return false, nil
	}
	cmp := lv.Compare(rv)
	switch f.Op {
	case "=":
		return cmp == 0, nil
	case "<>":
		return cmp != 0, nil
	case "<":
		return cmp < 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">":
		return cmp > 0, nil
	case ">=":
		return cmp >= 0, nil
	default:
		return false, fmt.Errorf("truth: unknown filter op %q", f.Op)
	}
}

func cloneRow(r truthRow) truthRow {
	nr := make(truthRow, len(r)+4)
	for k, v := range r {
		nr[k] = v
	}
	return nr
}

// EncodeRow renders a projected row as a canonical string for multiset
// comparison; kind tags keep Int(1) distinct from Str("1").
func EncodeRow(vals []types.Value) string {
	var b strings.Builder
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		switch {
		case v.IsNull():
			b.WriteString("~")
		case v.Kind == types.KindString:
			b.WriteString("s")
			b.WriteString(v.S)
		default:
			b.WriteString("i")
			b.WriteString(v.String())
		}
	}
	return b.String()
}
