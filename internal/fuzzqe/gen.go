package fuzzqe

import (
	"fmt"

	"repro/internal/datasets"
	"repro/internal/search"
)

// genCol is one column the random walk can reach: its qualified name,
// type class, and whether the schema guarantees it non-NULL (only
// non-NULL string columns may bind a web join's T1 — a NULL term value
// errors the virtual-table call in every plan regime).
type genCol struct {
	name    string
	isInt   bool
	nonNull bool
	web     bool // produced by a web join
	url     bool // a WebPages URL (eligible as a T1 binding, rarely)
}

// Gen generates QuerySpecs by random-walking the schema graph: start at
// the fact table, repeatedly attach a dimension join or a dependent web
// join whose T1 binds to a previously-reached non-NULL string column,
// then sprinkle filters, DISTINCT, projection, and ORDER BY over the
// reached columns. All randomness flows through one locked search.Rand,
// so a seed fully determines the query stream.
type Gen struct {
	rng *search.Rand
	env *Env
}

// NewGen returns a generator over env's schema seeded with seed.
func NewGen(env *Env, seed int64) *Gen {
	return &Gen{rng: search.NewRand(seed), env: env}
}

// Next produces one QuerySpec.
func (g *Gen) Next() *QuerySpec {
	r := g.rng
	spec := &QuerySpec{}
	cols := []genCol{
		{name: "f.Id", isInt: true, nonNull: true},
		{name: "f.Sk"},
		{name: "f.Tk", nonNull: true},
		{name: "f.Mk"},
		{name: "f.V", isInt: true, nonNull: true},
	}
	dimLeft := []string{JoinState, JoinTerm, JoinMovie}
	webs := 0
	nJoins := r.Intn(5) // 0..4
	for k := 0; k < nJoins; k++ {
		// Candidate kinds: each unjoined dimension once, webs up to two.
		kinds := append([]string{}, dimLeft...)
		if webs < 2 {
			kinds = append(kinds, "web", "web") // weight webs like two dims
		}
		if len(kinds) == 0 {
			break
		}
		kind := kinds[r.Intn(len(kinds))]
		switch kind {
		case JoinState:
			spec.Joins = append(spec.Joins, Join{Kind: JoinState, Alias: "s"})
			cols = append(cols,
				genCol{name: "s.Sk", nonNull: true},
				genCol{name: "s.Cap", nonNull: true},
				genCol{name: "s.Pop", isInt: true, nonNull: true})
			dimLeft = remove(dimLeft, JoinState)
		case JoinTerm:
			spec.Joins = append(spec.Joins, Join{Kind: JoinTerm, Alias: "t"})
			cols = append(cols,
				genCol{name: "t.Tk", nonNull: true},
				genCol{name: "t.Grp", isInt: true, nonNull: true})
			dimLeft = remove(dimLeft, JoinTerm)
		case JoinMovie:
			spec.Joins = append(spec.Joins, Join{Kind: JoinMovie, Alias: "m"})
			cols = append(cols,
				genCol{name: "m.Mk", nonNull: true},
				genCol{name: "m.Len", isInt: true, nonNull: true})
			dimLeft = remove(dimLeft, JoinMovie)
		default: // web
			webs++
			j := Join{Alias: fmt.Sprintf("w%d", webs)}
			if r.Float64() < 0.6 {
				j.Kind = JoinWebCount
			} else {
				j.Kind = JoinWebPages
				j.RankLimit = 1 + r.Intn(3)
			}
			if r.Float64() < 0.5 {
				j.Engine = "AV"
			} else {
				j.Engine = "G"
			}
			j.BindCol = g.pickBindCol(cols)
			if r.Float64() < 0.3 {
				j.T2Const = datasets.TemplateConstants[r.Intn(len(datasets.TemplateConstants))]
			}
			spec.Joins = append(spec.Joins, j)
			if j.Kind == JoinWebCount {
				cols = append(cols, genCol{name: j.Alias + ".Count", isInt: true, nonNull: true, web: true})
			} else {
				cols = append(cols,
					genCol{name: j.Alias + ".URL", nonNull: true, web: true, url: true},
					genCol{name: j.Alias + ".Rank", isInt: true, nonNull: true, web: true},
					genCol{name: j.Alias + ".Date", nonNull: true, web: true})
			}
		}
	}

	// Fact.Id range: with web joins present it bounds external calls per
	// query; without them it still varies scan selectivity.
	if webs > 0 {
		width := int64(6 + r.Intn(9))
		spec.IDLo = int64(r.Intn(NumFactRows - int(width)))
		spec.IDHi = spec.IDLo + width - 1
	} else if r.Float64() < 0.5 {
		spec.IDLo = int64(r.Intn(NumFactRows / 2))
		spec.IDHi = spec.IDLo + int64(r.Intn(NumFactRows/2))
	} else {
		spec.IDHi = NumFactRows - 1
	}

	for n := r.Intn(4); n > 0; n-- {
		if f, ok := g.genFilter(cols); ok {
			spec.Filters = append(spec.Filters, f)
		}
	}

	spec.Distinct = r.Float64() < 0.25
	projPool := cols
	// Existential shape: DISTINCT projecting only columns from before the
	// final dimension join plans as a hash semi-join in the hash variants.
	if n := len(spec.Joins); n > 0 && !spec.Joins[n-1].IsWeb() && r.Float64() < 0.25 {
		spec.Distinct = true
		alias := spec.Joins[n-1].Alias
		var pre []genCol
		for _, c := range cols {
			if aliasOf(c.name) != alias {
				pre = append(pre, c)
			}
		}
		projPool = pre
	}
	nProj := 1 + r.Intn(3)
	perm := make([]int, len(projPool))
	for i := range perm {
		perm[i] = i
	}
	r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	for _, pi := range perm[:min(nProj, len(perm))] {
		spec.Proj = append(spec.Proj, projPool[pi].name)
	}

	if r.Float64() < 0.2 {
		for _, col := range spec.Proj[:min(1+r.Intn(2), len(spec.Proj))] {
			spec.OrderBy = append(spec.OrderBy, OrderKey{Col: col, Desc: r.Float64() < 0.5})
		}
	}
	return spec
}

// pickBindCol selects a non-NULL string column to bind a web join's T1.
// Entity-bearing columns dominate; a WebPages URL is chosen rarely — it
// makes the next dependent join's bindings depend on a pending call,
// exercising the percolation clash rule for dependent joins.
func (g *Gen) pickBindCol(cols []genCol) string {
	r := g.rng
	var entity, urls []string
	for _, c := range cols {
		if c.isInt || !c.nonNull {
			continue
		}
		if c.url {
			urls = append(urls, c.name)
		} else if !c.web {
			entity = append(entity, c.name)
		}
	}
	if len(urls) > 0 && r.Float64() < 0.1 {
		return urls[r.Intn(len(urls))]
	}
	return entity[r.Intn(len(entity))]
}

// genFilter draws one restricted conjunct over the reached columns.
func (g *Gen) genFilter(cols []genCol) (Filter, bool) {
	r := g.rng
	ops := []string{"=", "<>", "<", "<=", ">", ">="}
	switch r.Intn(4) {
	case 0: // int column vs constant
		var ints []genCol
		for _, c := range cols {
			if c.isInt && c.name != "f.Id" && !c.url {
				ints = append(ints, c)
			}
		}
		if len(ints) == 0 {
			return Filter{}, false
		}
		c := ints[r.Intn(len(ints))]
		v := g.intConstFor(c.name)
		return Filter{Col: c.name, Op: ops[r.Intn(len(ops))], IntVal: &v}, true
	case 1: // string column vs constant
		var strs []genCol
		for _, c := range cols {
			if !c.isInt && !c.web {
				strs = append(strs, c)
			}
		}
		if len(strs) == 0 {
			return Filter{}, false
		}
		c := strs[r.Intn(len(strs))]
		v := g.strConstFor(c.name)
		op := "="
		if r.Float64() < 0.4 {
			op = "<>"
		}
		return Filter{Col: c.name, Op: op, StrVal: &v}, true
	case 2: // IS [NOT] NULL on a NULL-bearing fact key
		col := "f.Sk"
		if r.Float64() < 0.5 {
			col = "f.Mk"
		}
		op := "isnull"
		if r.Float64() < 0.5 {
			op = "isnotnull"
		}
		return Filter{Col: col, Op: op}, true
	default: // column vs column, same type class, distinct aliases
		for try := 0; try < 4; try++ {
			a := cols[r.Intn(len(cols))]
			b := cols[r.Intn(len(cols))]
			if a.isInt != b.isInt || aliasOf(a.name) == aliasOf(b.name) {
				continue
			}
			// Rank-vs-literal is consumed as a rank limit by the planner;
			// Rank-vs-column stays a plain filter and is fine.
			return Filter{Col: a.name, Op: ops[r.Intn(len(ops))], RCol: b.name}, true
		}
		return Filter{}, false
	}
}

// intConstFor picks a threshold in the column's plausible range so
// filters are neither always-true nor always-false.
func (g *Gen) intConstFor(col string) int64 {
	r := g.rng
	switch col {
	case "f.V":
		return int64(r.Intn(10))
	case "s.Pop":
		pops := []int64{1000000, 3000000, 6000000, 12000000}
		return pops[r.Intn(len(pops))]
	case "t.Grp":
		return int64(r.Intn(3))
	case "m.Len":
		return int64(80 + r.Intn(64))
	default: // w*.Count, w*.Rank
		spread := []int64{0, 1, 5, 25, 100, 1000, 10000}
		return spread[r.Intn(len(spread))]
	}
}

// strConstFor picks a value from the column's key pool (so equality can
// hit), occasionally one outside it.
func (g *Gen) strConstFor(col string) string {
	r := g.rng
	if r.Float64() < 0.15 {
		return "zzz-nonesuch"
	}
	switch col {
	case "f.Sk", "s.Sk":
		return g.env.FactSks[r.Intn(len(g.env.FactSks))]
	case "s.Cap":
		st, _ := datasets.StateByName(g.env.FactSks[r.Intn(10)])
		return st.Capital
	case "f.Tk", "t.Tk":
		return g.env.FactTks[r.Intn(len(g.env.FactTks))]
	default: // f.Mk, m.Mk
		return g.env.FactMks[r.Intn(len(g.env.FactMks))]
	}
}

func remove(ss []string, s string) []string {
	out := ss[:0]
	for _, x := range ss {
		if x != s {
			out = append(out, x)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
