package cache

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/types"
)

func rows(vals ...int64) []types.Tuple {
	out := make([]types.Tuple, len(vals))
	for i, v := range vals {
		out[i] = types.Tuple{types.Int(v)}
	}
	return out
}

func TestGetPut(t *testing.T) {
	c := New(4)
	if _, ok := c.Get("k"); ok {
		t.Error("empty cache should miss")
	}
	c.Put("k", rows(1, 2))
	got, ok := c.Get("k")
	if !ok || len(got) != 2 || got[0][0].I != 1 {
		t.Errorf("get: %v %v", got, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats: %d/%d", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), rows(int64(i)))
	}
	c.Get("k0") // refresh k0
	c.Put("k3", rows(3))
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 should have been evicted (least recently used)")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should be resident", k)
		}
	}
	if c.Len() != 3 {
		t.Errorf("len: %d", c.Len())
	}
}

func TestPutOverwrite(t *testing.T) {
	c := New(2)
	c.Put("k", rows(1))
	c.Put("k", rows(2, 3))
	got, _ := c.Get("k")
	if len(got) != 2 {
		t.Errorf("overwrite: %v", got)
	}
	if c.Len() != 1 {
		t.Errorf("len after overwrite: %d", c.Len())
	}
}

func TestDisabledCache(t *testing.T) {
	for _, c := range []*Cache{New(0), New(-1), nil} {
		c.Put("k", rows(1))
		if _, ok := c.Get("k"); ok {
			t.Error("disabled cache should never hit")
		}
		if c.Len() != 0 {
			t.Error("disabled cache length")
		}
		c.Reset() // must not panic
	}
}

func TestReset(t *testing.T) {
	c := New(4)
	c.Put("k", rows(1))
	c.Get("k")
	c.Reset()
	if c.Len() != 0 {
		t.Error("reset should clear")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Error("reset should clear stats")
	}
}

func TestEvictionsAndDelete(t *testing.T) {
	c := New(2)
	c.Put("a", rows(1))
	c.Put("b", rows(2))
	c.Put("c", rows(3)) // evicts a
	if c.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", c.Evictions())
	}
	if !c.Delete("b") {
		t.Error("delete of resident key should report true")
	}
	if c.Delete("b") {
		t.Error("second delete should report false")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("deleted key should miss")
	}
	if c.Len() != 1 {
		t.Errorf("len after delete: %d", c.Len())
	}
	c.Reset()
	if c.Evictions() != 0 {
		t.Error("reset should clear evictions")
	}
	// nil/disabled caches must stay no-ops.
	var nilc *Cache
	if nilc.Delete("x") || nilc.Evictions() != 0 || nilc.Entries(1) != nil {
		t.Error("nil cache should be inert")
	}
}

func TestEntriesRecencyOrder(t *testing.T) {
	c := New(8)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), rows(int64(i)))
	}
	c.Get("k1") // hottest now
	es := c.Entries(2)
	if len(es) != 2 || es[0].Key != "k1" || es[1].Key != "k3" {
		t.Errorf("entries = %+v, want [k1 k3]", es)
	}
	if all := c.Entries(0); len(all) != 4 {
		t.Errorf("Entries(0) = %d entries, want all 4", len(all))
	}
	if es[0].Rows[0][0].I != 1 {
		t.Errorf("entry rows: %v", es[0].Rows)
	}
}

func TestObserveExposesCounters(t *testing.T) {
	c := New(2)
	reg := obs.NewRegistry()
	c.Observe(reg)
	c.Put("a", rows(1))
	c.Get("a")
	c.Get("zzz")
	c.Put("b", rows(2))
	c.Put("c", rows(3)) // evict
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"wsq_cache_hits_total 1",
		"wsq_cache_misses_total 1",
		"wsq_cache_evictions_total 1",
		"wsq_cache_entries 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
	// Observe is idempotent and nil-safe.
	c.Observe(reg)
	(*Cache)(nil).Observe(reg)
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%100)
				if i%2 == 0 {
					c.Put(k, rows(int64(i)))
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("capacity exceeded: %d", c.Len())
	}
}
