package cache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/types"
)

func rows(vals ...int64) []types.Tuple {
	out := make([]types.Tuple, len(vals))
	for i, v := range vals {
		out[i] = types.Tuple{types.Int(v)}
	}
	return out
}

func TestGetPut(t *testing.T) {
	c := New(4)
	if _, ok := c.Get("k"); ok {
		t.Error("empty cache should miss")
	}
	c.Put("k", rows(1, 2))
	got, ok := c.Get("k")
	if !ok || len(got) != 2 || got[0][0].I != 1 {
		t.Errorf("get: %v %v", got, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats: %d/%d", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), rows(int64(i)))
	}
	c.Get("k0") // refresh k0
	c.Put("k3", rows(3))
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 should have been evicted (least recently used)")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should be resident", k)
		}
	}
	if c.Len() != 3 {
		t.Errorf("len: %d", c.Len())
	}
}

func TestPutOverwrite(t *testing.T) {
	c := New(2)
	c.Put("k", rows(1))
	c.Put("k", rows(2, 3))
	got, _ := c.Get("k")
	if len(got) != 2 {
		t.Errorf("overwrite: %v", got)
	}
	if c.Len() != 1 {
		t.Errorf("len after overwrite: %d", c.Len())
	}
}

func TestDisabledCache(t *testing.T) {
	for _, c := range []*Cache{New(0), New(-1), nil} {
		c.Put("k", rows(1))
		if _, ok := c.Get("k"); ok {
			t.Error("disabled cache should never hit")
		}
		if c.Len() != 0 {
			t.Error("disabled cache length")
		}
		c.Reset() // must not panic
	}
}

func TestReset(t *testing.T) {
	c := New(4)
	c.Put("k", rows(1))
	c.Get("k")
	c.Reset()
	if c.Len() != 0 {
		t.Error("reset should clear")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Error("reset should clear stats")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%100)
				if i%2 == 0 {
					c.Put(k, rows(int64(i)))
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("capacity exceeded: %d", c.Len())
	}
}
