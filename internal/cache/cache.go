// Package cache provides a concurrency-safe LRU cache for external search
// results. Caching expensive external methods is the [HN96] technique the
// paper cites as "important for avoiding repeated external calls" — e.g.
// in the Figure 7 plan, where a cross-product placed below a dependent
// join would otherwise send |R| identical calls per Sig.
package cache

import (
	"container/list"
	"sync"

	"repro/internal/obs"
	"repro/internal/types"
)

// Cache is a fixed-capacity LRU map from call keys to result rows.
type Cache struct {
	mu        sync.Mutex
	cap       int
	items     map[string]*list.Element
	lru       *list.List // of *entry; front = most recently used
	hits      int64
	misses    int64
	evictions int64
}

type entry struct {
	key  string
	rows []types.Tuple
}

// New creates a cache holding up to capacity entries; capacity <= 0
// disables caching (every Get misses, Put is a no-op).
func New(capacity int) *Cache {
	return &Cache{
		cap:   capacity,
		items: make(map[string]*list.Element),
		lru:   list.New(),
	}
}

// Get returns the cached rows for key.
func (c *Cache) Get(key string) ([]types.Tuple, bool) {
	if c == nil || c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*entry).rows, true
}

// Put stores rows under key, evicting the least recently used entry when
// over capacity.
func (c *Cache) Put(key string, rows []types.Tuple) {
	if c == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).rows = rows
		c.lru.MoveToFront(el)
		return
	}
	el := c.lru.PushFront(&entry{key: key, rows: rows})
	c.items[key] = el
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.items, back.Value.(*entry).key)
		c.evictions++
	}
}

// Delete removes key (the cache-peering invalidate operation). It reports
// whether an entry existed.
func (c *Cache) Delete(key string) bool {
	if c == nil || c.cap <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.lru.Remove(el)
	delete(c.items, key)
	return true
}

// Entry is one cached key with its rows, as snapshotted by Entries.
type Entry struct {
	Key  string
	Rows []types.Tuple
}

// Entries snapshots up to max entries in recency order (most recently
// used first) — the "hot keys" a draining shard hands to their new homes.
// max <= 0 snapshots everything.
func (c *Cache) Entries(max int) []Entry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.lru.Len()
	if max > 0 && n > max {
		n = max
	}
	out := make([]Entry, 0, n)
	for el := c.lru.Front(); el != nil && len(out) < n; el = el.Next() {
		e := el.Value.(*entry)
		out = append(out, Entry{Key: e.key, Rows: e.rows})
	}
	return out
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns hit/miss counters.
func (c *Cache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions returns the number of entries dropped at capacity.
func (c *Cache) Evictions() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Observe implements obs.Observable: it exposes the cache's counters on a
// metrics registry so cache effectiveness is visible on /metrics and in
// wsqbench reports. Counters are sampled at scrape time from the cache's
// own fields; Reset (used between experiment runs) therefore reads as a
// Prometheus counter reset, which scrapers handle natively.
func (c *Cache) Observe(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.CounterFunc("wsq_cache_hits_total",
		"Result-cache lookups served from the cache.", func() float64 {
			hits, _ := c.Stats()
			return float64(hits)
		})
	reg.CounterFunc("wsq_cache_misses_total",
		"Result-cache lookups that found nothing.", func() float64 {
			_, misses := c.Stats()
			return float64(misses)
		})
	reg.CounterFunc("wsq_cache_evictions_total",
		"Result-cache entries dropped at capacity (LRU).", func() float64 {
			return float64(c.Evictions())
		})
	reg.GaugeFunc("wsq_cache_entries",
		"Result-cache entries currently held.", func() float64 {
			return float64(c.Len())
		})
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = make(map[string]*list.Element)
	c.lru = list.New()
	c.hits, c.misses, c.evictions = 0, 0, 0
}
