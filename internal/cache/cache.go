// Package cache provides a concurrency-safe LRU cache for external search
// results. Caching expensive external methods is the [HN96] technique the
// paper cites as "important for avoiding repeated external calls" — e.g.
// in the Figure 7 plan, where a cross-product placed below a dependent
// join would otherwise send |R| identical calls per Sig.
package cache

import (
	"container/list"
	"sync"

	"repro/internal/types"
)

// Cache is a fixed-capacity LRU map from call keys to result rows.
type Cache struct {
	mu     sync.Mutex
	cap    int
	items  map[string]*list.Element
	lru    *list.List // of *entry; front = most recently used
	hits   int64
	misses int64
}

type entry struct {
	key  string
	rows []types.Tuple
}

// New creates a cache holding up to capacity entries; capacity <= 0
// disables caching (every Get misses, Put is a no-op).
func New(capacity int) *Cache {
	return &Cache{
		cap:   capacity,
		items: make(map[string]*list.Element),
		lru:   list.New(),
	}
}

// Get returns the cached rows for key.
func (c *Cache) Get(key string) ([]types.Tuple, bool) {
	if c == nil || c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*entry).rows, true
}

// Put stores rows under key, evicting the least recently used entry when
// over capacity.
func (c *Cache) Put(key string, rows []types.Tuple) {
	if c == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).rows = rows
		c.lru.MoveToFront(el)
		return
	}
	el := c.lru.PushFront(&entry{key: key, rows: rows})
	c.items[key] = el
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.items, back.Value.(*entry).key)
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns hit/miss counters.
func (c *Cache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = make(map[string]*list.Element)
	c.lru = list.New()
	c.hits, c.misses = 0, 0
}
