package vtab

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/types"
)

// stubEngine scripts counts/results for Source tests.
type stubEngine struct {
	name     string
	lastQ    string
	lastK    int
	fetchErr error
}

func (s *stubEngine) Name() string { return s.name }
func (s *stubEngine) Count(q string) (int64, error) {
	s.lastQ = q
	return int64(len(q)), nil
}
func (s *stubEngine) Search(q string, k int) ([]search.Result, error) {
	s.lastQ, s.lastK = q, k
	var out []search.Result
	for i := 1; i <= k && i <= 4; i++ {
		out = append(out, search.Result{URL: fmt.Sprintf("u%d", i), Rank: i, Date: "1999-05-05"})
	}
	return out, nil
}
func (s *stubEngine) Fetch(url string) (string, error) {
	if s.fetchErr != nil {
		return "", s.fetchErr
	}
	return "body:" + url, nil
}

func newRegistry() (*Registry, *stubEngine, *stubEngine) {
	er := search.NewRegistry()
	av := &stubEngine{name: "altavista"}
	g := &stubEngine{name: "google"}
	er.Register(av, "AV")
	er.Register(g, "G")
	return NewRegistry(er), av, g
}

func TestIsVirtual(t *testing.T) {
	r, _, _ := newRegistry()
	for _, name := range []string{"WebCount", "webpages", "WEBFETCH", "WebCount_AV", "WebPages_Google"} {
		if !r.IsVirtual(name) {
			t.Errorf("%s should be virtual", name)
		}
	}
	for _, name := range []string{"States", "Web", "WebCounter"} {
		if r.IsVirtual(name) {
			t.Errorf("%s should not be virtual", name)
		}
	}
}

func TestResolveEngines(t *testing.T) {
	r, av, g := newRegistry()
	d, err := r.Resolve("WebCount_AV")
	if err != nil || d.Engine != search.Engine(av) || d.Kind != KindWebCount {
		t.Fatalf("resolve AV: %+v %v", d, err)
	}
	if !d.Near {
		t.Error("altavista supports NEAR")
	}
	d, err = r.Resolve("WebPages_Google")
	if err != nil || d.Engine != search.Engine(g) || d.Kind != KindWebPages {
		t.Fatalf("resolve google: %+v %v", d, err)
	}
	if d.Near {
		t.Error("google does not support NEAR (paper footnote 1)")
	}
	// Unsuffixed uses the default engine (first by name: altavista).
	d, err = r.Resolve("WebCount")
	if err != nil || d.Engine.Name() != "altavista" {
		t.Fatalf("default engine: %+v %v", d, err)
	}
	if _, err := r.Resolve("WebCount_Lycos"); err == nil {
		t.Error("unknown engine suffix should error")
	}
	if _, err := r.Resolve("States"); err == nil {
		t.Error("non-virtual resolve should error")
	}
}

func TestColumnsShape(t *testing.T) {
	r, _, _ := newRegistry()
	wc, _ := r.Resolve("WebCount")
	cols := wc.Columns()
	if len(cols) != 1+MaxTerms+1 {
		t.Fatalf("WebCount columns: %d", len(cols))
	}
	if cols[0].Name != "SearchExp" || !cols[0].Input {
		t.Error("SearchExp first")
	}
	if cols[len(cols)-1].Name != "Count" || cols[len(cols)-1].Input {
		t.Error("Count last, output")
	}
	wp, _ := r.Resolve("WebPages")
	pc := wp.Columns()
	if len(pc) != 1+MaxTerms+3 {
		t.Fatalf("WebPages columns: %d", len(pc))
	}
	names := []string{pc[len(pc)-3].Name, pc[len(pc)-2].Name, pc[len(pc)-1].Name}
	if names[0] != "URL" || names[1] != "Rank" || names[2] != "Date" {
		t.Errorf("WebPages outputs: %v", names)
	}
	wf, _ := r.Resolve("WebFetch")
	fc := wf.Columns()
	if len(fc) != 3 || fc[0].Name != "URL" || !fc[0].Input {
		t.Errorf("WebFetch columns: %+v", fc)
	}
}

func TestInstantiateSchemaFreshIDs(t *testing.T) {
	r, _, _ := newRegistry()
	d, _ := r.Resolve("WebCount")
	s1 := d.InstantiateSchema("C")
	s2 := d.InstantiateSchema("S")
	if s1.Cols[0].Table != "C" || s2.Cols[0].Table != "S" {
		t.Error("alias labels")
	}
	if s1.Cols[0].ID == s2.Cols[0].ID {
		t.Error("fresh AttrIDs per instantiation")
	}
}

func TestDefaultSearchExp(t *testing.T) {
	r, _, _ := newRegistry()
	av, _ := r.Resolve("WebCount_AV")
	if got := av.DefaultSearchExp([]int{1, 2, 3}); got != "%1 near %2 near %3" {
		t.Errorf("AV default: %q", got)
	}
	g, _ := r.Resolve("WebCount_Google")
	if got := g.DefaultSearchExp([]int{1, 2}); got != "%1 %2" {
		t.Errorf("google default: %q", got)
	}
	if got := av.DefaultSearchExp([]int{1}); got != "%1" {
		t.Errorf("single term: %q", got)
	}
}

func TestBuildQuery(t *testing.T) {
	terms := []string{"Colorado", "Denver", "", "", "", "", "", ""}
	q, err := BuildQuery("%1 near %2", terms)
	if err != nil || q != "Colorado near Denver" {
		t.Fatalf("%q %v", q, err)
	}
	if _, err := BuildQuery("%1 near %3", terms); err == nil {
		t.Error("unbound term reference should error")
	}
	if _, err := BuildQuery("%9", terms); err == nil {
		t.Error("out-of-range term should error")
	}
	if _, err := BuildQuery("", terms); err == nil {
		t.Error("empty expression should error")
	}
	// Constant expression with no markers is allowed.
	q, err = BuildQuery("four corners", terms)
	if err != nil || q != "four corners" {
		t.Errorf("constant expr: %q %v", q, err)
	}
}

func callArgs(searchExp string, terms ...string) []types.Value {
	args := make([]types.Value, 1+MaxTerms)
	args[0] = types.Str(searchExp)
	for i := range args[1:] {
		args[1+i] = types.Null()
	}
	for i, term := range terms {
		args[1+i] = types.Str(term)
	}
	return args
}

func TestSourceWebCountCall(t *testing.T) {
	r, av, _ := newRegistry()
	d, _ := r.Resolve("WebCount_AV")
	src := NewSource(d)
	if src.NumEcho() != 1+MaxTerms {
		t.Errorf("NumEcho: %d", src.NumEcho())
	}
	rows, err := src.Call(callArgs("%1 near %2", "Colorado", "four corners"))
	if err != nil {
		t.Fatal(err)
	}
	if av.lastQ != "Colorado near four corners" {
		t.Errorf("query sent: %q", av.lastQ)
	}
	if len(rows) != 1 || rows[0][0].I != int64(len(av.lastQ)) {
		t.Errorf("rows: %v", rows)
	}
}

func TestSourceWebPagesCall(t *testing.T) {
	r, av, _ := newRegistry()
	d, _ := r.Resolve("WebPages_AV")
	src := NewSource(d)
	args := append(callArgs("%1", "Utah"), types.Int(2)) // rank limit 2
	rows, err := src.Call(args)
	if err != nil {
		t.Fatal(err)
	}
	if av.lastK != 2 {
		t.Errorf("limit passed to engine: %d", av.lastK)
	}
	if len(rows) != 2 || rows[0][1].I != 1 || rows[1][1].I != 2 {
		t.Errorf("rows: %v", rows)
	}
	if rows[0][2].AsString() != "1999-05-05" {
		t.Errorf("date column: %v", rows[0])
	}
	// Missing rank-limit argument.
	if _, err := src.Call(callArgs("%1", "Utah")); err == nil {
		t.Error("WebPages requires a rank-limit argument")
	}
}

func TestSourceWebFetchCall(t *testing.T) {
	r, av, _ := newRegistry()
	d, _ := r.Resolve("WebFetch_AV")
	src := NewSource(d)
	if src.NumEcho() != 1 {
		t.Errorf("NumEcho: %d", src.NumEcho())
	}
	rows, err := src.Call([]types.Value{types.Str("www.x.com")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].AsString() != "body:www.x.com" || rows[0][1].I != 200 {
		t.Errorf("rows: %v", rows)
	}
	// Not found surfaces as a 404 row, not an error (the crawler keeps going).
	av.fetchErr = search.ErrNotFound
	rows, err = src.Call([]types.Value{types.Str("gone")})
	if err != nil || len(rows) != 1 || rows[0][1].I != 404 {
		t.Errorf("404 row: %v %v", rows, err)
	}
	// Unbound URL.
	if _, err := src.Call([]types.Value{types.Null()}); err == nil {
		t.Error("null URL should error")
	}
}

func TestSourceCallValidation(t *testing.T) {
	r, _, _ := newRegistry()
	d, _ := r.Resolve("WebCount")
	src := NewSource(d)
	// Null SearchExp.
	args := callArgs("%1", "x")
	args[0] = types.Null()
	if _, err := src.Call(args); err == nil {
		t.Error("null SearchExp should error")
	}
	// Too few args.
	if _, err := src.Call([]types.Value{types.Str("%1")}); err == nil {
		t.Error("short args should error")
	}
}

func TestCacheKeyDistinguishes(t *testing.T) {
	r, _, _ := newRegistry()
	av, _ := r.Resolve("WebCount_AV")
	g, _ := r.Resolve("WebCount_Google")
	kAV := NewSource(av).CacheKey(callArgs("%1", "Utah"))
	kG := NewSource(g).CacheKey(callArgs("%1", "Utah"))
	if kAV == kG {
		t.Error("cache keys must be engine-specific")
	}
	k1 := NewSource(av).CacheKey(callArgs("%1", "Utah"))
	if k1 != kAV {
		t.Error("cache keys must be deterministic")
	}
	wp, _ := r.Resolve("WebPages_AV")
	kp2 := NewSource(wp).CacheKey(append(callArgs("%1", "Utah"), types.Int(2)))
	kp5 := NewSource(wp).CacheKey(append(callArgs("%1", "Utah"), types.Int(5)))
	if kp2 == kp5 {
		t.Error("rank limit must be part of the key")
	}
}

func TestKindString(t *testing.T) {
	if KindWebCount.String() != "WebCount" || KindWebPages.String() != "WebPages" || KindWebFetch.String() != "WebFetch" {
		t.Error("kind names")
	}
}

func TestSchemaTypes(t *testing.T) {
	r, _, _ := newRegistry()
	d, _ := r.Resolve("WebPages")
	s := d.InstantiateSchema("")
	rank, err := s.Resolve("", "Rank")
	if err != nil || rank.Type != schema.TInt {
		t.Errorf("rank type: %+v %v", rank, err)
	}
	if !strings.EqualFold(s.Cols[0].Table, "WebPages") {
		t.Errorf("default alias: %v", s.Cols[0])
	}
}
