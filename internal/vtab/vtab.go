// Package vtab defines the WSQ virtual tables of Section 3 of the paper:
//
//	WebPages(SearchExp, T1, ..., Tn, URL, Rank, Date)
//	WebCount(SearchExp, T1, ..., Tn, Count)
//
// plus WebFetch(URL, Content, Status), the virtual table behind the web
// crawler scenario of Section 4.2. Each virtual table is instantiated per
// search engine: WebCount_AV, WebPages_Google, and so on; the unsuffixed
// names resolve to the registry's default engine.
//
// A virtual table "looks like a table to the query processor but returns
// dynamically-generated tuples". Its input columns (SearchExp, T1..Tn)
// must be bound during query processing — by defaults, by equality with a
// constant, or through an equi-join — which the planner turns into a
// dependent join feeding an EVScan (or AEVScan) built from these
// definitions.
package vtab

import (
	"fmt"
	"strings"

	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/types"
)

// MaxTerms is the largest supported term index n in T1..Tn. The paper
// notes DB2 table functions would likewise need a predetermined maximum.
const MaxTerms = 8

// DefaultRankLimit is the default selection on WebPages.Rank, "to prevent
// 'runaway' queries" (Section 3: Rank < 20).
const DefaultRankLimit = 20

// Kind enumerates the virtual table families.
type Kind uint8

// The virtual table kinds.
const (
	KindWebCount Kind = iota
	KindWebPages
	KindWebFetch
)

// String returns the family name.
func (k Kind) String() string {
	switch k {
	case KindWebCount:
		return "WebCount"
	case KindWebPages:
		return "WebPages"
	case KindWebFetch:
		return "WebFetch"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ColumnDef declares one virtual table column.
type ColumnDef struct {
	Name  string
	Type  schema.Type
	Input bool // true for columns that parameterize the call
}

// Def is one resolved virtual table instance (family × engine).
type Def struct {
	// TableName is the name as referenced in SQL, e.g. "WebCount_AV".
	TableName string
	Kind      Kind
	Engine    search.Engine
	// Near reports whether the engine supports the NEAR operator; it
	// selects the default SearchExp ("%1 near %2 ..." vs "%1 %2 ...").
	Near bool
}

// Columns returns the table's column definitions in schema order: inputs
// (SearchExp, T1..Tn — or URL for WebFetch) followed by outputs.
func (d *Def) Columns() []ColumnDef {
	switch d.Kind {
	case KindWebFetch:
		return []ColumnDef{
			{Name: "URL", Type: schema.TString, Input: true},
			{Name: "Content", Type: schema.TString},
			{Name: "Status", Type: schema.TInt},
		}
	default:
		cols := make([]ColumnDef, 0, 1+MaxTerms+3)
		cols = append(cols, ColumnDef{Name: "SearchExp", Type: schema.TString, Input: true})
		for i := 1; i <= MaxTerms; i++ {
			cols = append(cols, ColumnDef{Name: fmt.Sprintf("T%d", i), Type: schema.TString, Input: true})
		}
		if d.Kind == KindWebCount {
			cols = append(cols, ColumnDef{Name: "Count", Type: schema.TInt})
		} else {
			cols = append(cols,
				ColumnDef{Name: "URL", Type: schema.TString},
				ColumnDef{Name: "Rank", Type: schema.TInt},
				ColumnDef{Name: "Date", Type: schema.TString})
		}
		return cols
	}
}

// NumInputs returns the count of leading input (echoed) columns.
func (d *Def) NumInputs() int {
	if d.Kind == KindWebFetch {
		return 1
	}
	return 1 + MaxTerms
}

// InstantiateSchema creates a fresh schema for one occurrence of the table
// under the given alias.
func (d *Def) InstantiateSchema(alias string) *schema.Schema {
	if alias == "" {
		alias = d.TableName
	}
	defs := d.Columns()
	cols := make([]schema.Column, len(defs))
	for i, cd := range defs {
		cols[i] = schema.Column{ID: schema.NewAttrID(), Table: alias, Name: cd.Name, Type: cd.Type}
	}
	return schema.New(cols...)
}

// DefaultSearchExp builds the default parameterized search expression for
// the given bound term indices: "%1 near %2 near ... near %n", or the
// space-joined form for engines without NEAR support (paper footnote 1).
func (d *Def) DefaultSearchExp(boundIdx []int) string {
	sep := " near "
	if !d.Near {
		sep = " "
	}
	parts := make([]string, len(boundIdx))
	for i, n := range boundIdx {
		parts[i] = fmt.Sprintf("%%%d", n)
	}
	return strings.Join(parts, sep)
}

// BuildQuery instantiates a search expression template with term values,
// substituting %i (printf/scanf style, Section 3). Higher indices are
// substituted first so that %10 is not clobbered by %1.
func BuildQuery(template string, terms []string) (string, error) {
	q := template
	for i := len(terms); i >= 1; i-- {
		marker := fmt.Sprintf("%%%d", i)
		if !strings.Contains(q, marker) {
			continue
		}
		val := terms[i-1]
		if val == "" {
			return "", fmt.Errorf("search expression %q references unbound term %s", template, marker)
		}
		q = strings.ReplaceAll(q, marker, val)
	}
	if strings.Contains(q, "%") {
		return "", fmt.Errorf("search expression %q references a term beyond T%d", template, len(terms))
	}
	if strings.TrimSpace(q) == "" {
		return "", fmt.Errorf("empty search expression")
	}
	return q, nil
}

// Registry resolves SQL table names to virtual table definitions.
type Registry struct {
	engines *search.Registry
}

// NewRegistry builds a resolver over the given engines.
func NewRegistry(engines *search.Registry) *Registry {
	return &Registry{engines: engines}
}

// IsVirtual reports whether the SQL table name denotes a virtual table.
func (r *Registry) IsVirtual(name string) bool {
	base := strings.ToLower(name)
	if i := strings.Index(base, "_"); i >= 0 {
		base = base[:i]
	}
	switch base {
	case "webcount", "webpages", "webfetch":
		return true
	default:
		return false
	}
}

// Resolve maps a SQL table name (e.g. "WebPages_Google", "WebCount") to a
// Def bound to the right engine.
func (r *Registry) Resolve(name string) (*Def, error) {
	lower := strings.ToLower(name)
	base, suffix := lower, ""
	if i := strings.Index(lower, "_"); i >= 0 {
		base, suffix = lower[:i], lower[i+1:]
	}
	var kind Kind
	switch base {
	case "webcount":
		kind = KindWebCount
	case "webpages":
		kind = KindWebPages
	case "webfetch":
		kind = KindWebFetch
	default:
		return nil, fmt.Errorf("%s is not a virtual table", name)
	}
	var eng search.Engine
	var err error
	if suffix == "" {
		eng, err = r.engines.Default()
	} else {
		eng, err = r.engines.Lookup(suffix)
	}
	if err != nil {
		return nil, fmt.Errorf("virtual table %s: %w", name, err)
	}
	return &Def{
		TableName: name,
		Kind:      kind,
		Engine:    eng,
		Near:      engineSupportsNear(eng.Name()),
	}, nil
}

// engineSupportsNear reports whether the engine honors the NEAR operator.
// Of the two 1999-era engines the paper uses, AltaVista did and Google did
// not; any other registered engine is assumed NEAR-capable.
func engineSupportsNear(name string) bool {
	return !strings.EqualFold(name, "google")
}

// ---------------------------------------------------------------------------
// ExternalSource implementation (consumed by exec.EVScan / async.AEVScan)

// Source adapts a Def to the executor's ExternalSource interface. For
// WebCount/WebPages the call arguments are the input column values
// (SearchExp, T1..T8); WebPages carries one extra non-echoed argument, the
// rank limit. For WebFetch the single argument is the URL.
type Source struct {
	Def *Def
}

// NewSource wraps a definition.
func NewSource(d *Def) *Source { return &Source{Def: d} }

// Name implements exec.ExternalSource.
func (s *Source) Name() string { return s.Def.TableName }

// Destination implements exec.ExternalSource.
func (s *Source) Destination() string { return s.Def.Engine.Name() }

// NumEcho implements exec.ExternalSource.
func (s *Source) NumEcho() int { return s.Def.NumInputs() }

// queryAndLimit decodes the argument vector.
func (s *Source) queryAndLimit(args []types.Value) (string, int, error) {
	switch s.Def.Kind {
	case KindWebFetch:
		if len(args) < 1 || args[0].IsNull() {
			return "", 0, fmt.Errorf("WebFetch requires a bound URL")
		}
		return args[0].AsString(), 0, nil
	default:
		if len(args) < 1+MaxTerms {
			return "", 0, fmt.Errorf("%s expects %d arguments, got %d", s.Def.Kind, 1+MaxTerms, len(args))
		}
		if args[0].IsNull() {
			return "", 0, fmt.Errorf("%s requires a bound SearchExp", s.Def.Kind)
		}
		terms := make([]string, MaxTerms)
		for i := 0; i < MaxTerms; i++ {
			if !args[1+i].IsNull() {
				terms[i] = args[1+i].AsString()
			}
		}
		q, err := BuildQuery(args[0].AsString(), terms)
		if err != nil {
			return "", 0, err
		}
		limit := DefaultRankLimit
		if s.Def.Kind == KindWebPages {
			if len(args) != 1+MaxTerms+1 {
				return "", 0, fmt.Errorf("WebPages expects a rank-limit argument")
			}
			n, err := args[1+MaxTerms].AsInt()
			if err != nil {
				return "", 0, fmt.Errorf("WebPages rank limit: %w", err)
			}
			limit = int(n)
		}
		return q, limit, nil
	}
}

// CacheKey implements exec.ExternalSource.
func (s *Source) CacheKey(args []types.Value) string {
	q, limit, err := s.queryAndLimit(args)
	if err != nil {
		return fmt.Sprintf("!err|%v", err)
	}
	return fmt.Sprintf("%s|%s|%s|%d", s.Def.Engine.Name(), s.Def.Kind, q, limit)
}

// Call implements exec.ExternalSource: it performs the search-engine
// request and shapes the response into output-column rows.
func (s *Source) Call(args []types.Value) ([]types.Tuple, error) {
	q, limit, err := s.queryAndLimit(args)
	if err != nil {
		return nil, err
	}
	switch s.Def.Kind {
	case KindWebCount:
		n, err := s.Def.Engine.Count(q)
		if err != nil {
			return nil, err
		}
		return []types.Tuple{{types.Int(n)}}, nil
	case KindWebPages:
		res, err := s.Def.Engine.Search(q, limit)
		if err != nil {
			return nil, err
		}
		rows := make([]types.Tuple, 0, len(res))
		for _, r := range res {
			if r.Rank > limit {
				continue
			}
			rows = append(rows, types.Tuple{types.Str(r.URL), types.Int(int64(r.Rank)), types.Str(r.Date)})
		}
		return rows, nil
	case KindWebFetch:
		body, err := s.Def.Engine.Fetch(q)
		if err == search.ErrNotFound {
			return []types.Tuple{{types.Str(""), types.Int(404)}}, nil
		}
		if err != nil {
			return nil, err
		}
		return []types.Tuple{{types.Str(body), types.Int(200)}}, nil
	default:
		return nil, fmt.Errorf("unknown virtual table kind %v", s.Def.Kind)
	}
}
